(* End-to-end device I/O: a Kitten driver drives a delegated NIC — TX
   doorbells through the EPT-policed MMIO path, RX via MSI in every
   interrupt-delivery mode — and the usual native-vs-covirt containment
   story for driver bugs. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_test_util

let nic_stack ~config () =
  let s = Helpers.boot_stack ~config () in
  let nic = Nic.create s.Helpers.machine ~name:"nic0" in
  (s, nic)

(* boot, delegate, register the driver's irq handler, bind the MSI *)
let bring_up_driver (s : Helpers.stack) nic ~vector =
  let p = Helpers.pisces s in
  (match Pisces.assign_device p s.Helpers.enclave ~device:"nic0" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let rx_seen = ref 0 in
  Kitten.register_irq s.Helpers.kitten ~vector (fun _ _ -> incr rx_seen);
  Nic.bind_msi nic ~core:1 ~vector;
  rx_seen

let test_tx_rx_native () =
  let s, nic = nic_stack ~config:Covirt.Config.native () in
  let rx_seen = bring_up_driver s nic ~vector:0x60 in
  let ctx = Helpers.ctx s 1 in
  Nic.ring_tx s.Helpers.machine ctx.Kitten.cpu nic;
  Nic.ring_tx s.Helpers.machine ctx.Kitten.cpu nic;
  Alcotest.(check int) "tx counted" 2 (Nic.tx_count nic);
  (match Nic.inject_rx s.Helpers.machine nic with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "rx handled" 1 !rx_seen;
  Alcotest.(check int) "rx counted" 1 (Nic.rx_count nic)

let rx_exits ~config () =
  let s, nic = nic_stack ~config () in
  let rx_seen = bring_up_driver s nic ~vector:0x60 in
  (match Nic.inject_rx s.Helpers.machine nic with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "rx handled" 1 !rx_seen;
  match
    Covirt.Controller.instance_for s.Helpers.controller
      ~enclave_id:s.Helpers.enclave.Enclave.id
  with
  | None -> 0
  | Some inst ->
      List.fold_left
        (fun acc (_, hv) ->
          acc + (Covirt.Hypervisor.vmcs hv).Vmcs.stats.Vmcs.exits_interrupt)
        0 inst.Covirt.Controller.hypervisors

let test_rx_exit_behaviour_by_mode () =
  (* native and vapic-off: no exits; PIV and full: device interrupts
     exit (unlike IPIs under PIV) *)
  Alcotest.(check int) "native" 0 (rx_exits ~config:Covirt.Config.native ());
  Alcotest.(check int) "covirt, vapic off" 0
    (rx_exits ~config:Covirt.Config.mem ());
  Alcotest.(check int) "PIV still exits for devices" 1
    (rx_exits ~config:Covirt.Config.ipi ());
  Alcotest.(check int) "full vapic exits" 1
    (rx_exits
       ~config:{ Covirt.Config.none with ipi = Covirt.Config.Ipi_vapic_full }
       ())

let test_driver_tx_protected () =
  (* the driver of enclave A cannot ring enclave B's NIC *)
  let s, nic = nic_stack ~config:Covirt.Config.mem () in
  let _rx = bring_up_driver s nic ~vector:0x60 in
  let intruder_enclave, intruder_kitten = Helpers.second_enclave s () in
  let ictx = Kitten.context intruder_kitten ~core:3 in
  match
    Pisces.run_guarded (Helpers.pisces s) (fun () ->
        Kitten.poke_foreign_mmio ictx
          ((Nic.window nic).Region.base + Nic.doorbell_offset))
  with
  | Error crash ->
      Alcotest.(check int) "intruder terminated" intruder_enclave.Enclave.id
        crash.Pisces.enclave_id;
      Alcotest.(check int) "no phantom tx" 0 (Nic.tx_count nic)
  | Ok () -> Alcotest.fail "not contained"

let test_rx_without_binding () =
  let s, nic = nic_stack ~config:Covirt.Config.native () in
  ignore s;
  Alcotest.(check bool) "unbound rx fails cleanly" true
    (Result.is_error (Nic.inject_rx s.Helpers.machine nic));
  Alcotest.check_raises "bad vector" (Invalid_argument "Nic.bind_msi: vector")
    (fun () -> Nic.bind_msi nic ~core:1 ~vector:8)

let test_rx_under_piv_costs_more_than_native () =
  let cost ~config =
    let s, nic = nic_stack ~config () in
    let _rx = bring_up_driver s nic ~vector:0x60 in
    let cpu = Machine.cpu s.Helpers.machine 1 in
    let before = Cpu.rdtsc cpu in
    (match Nic.inject_rx s.Helpers.machine nic with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    Cpu.rdtsc cpu - before
  in
  let native = cost ~config:Covirt.Config.native in
  let piv = cost ~config:Covirt.Config.ipi in
  Alcotest.(check bool) "device rx pays the exit under PIV" true
    (piv > native + 1000)

let () =
  Alcotest.run "nic"
    [
      ( "nic",
        [
          Alcotest.test_case "tx/rx native" `Quick test_tx_rx_native;
          Alcotest.test_case "rx exits by mode" `Quick
            test_rx_exit_behaviour_by_mode;
          Alcotest.test_case "tx protected" `Quick test_driver_tx_protected;
          Alcotest.test_case "unbound rx" `Quick test_rx_without_binding;
          Alcotest.test_case "rx cost under PIV" `Quick
            test_rx_under_piv_costs_more_than_native;
        ] );
    ]
