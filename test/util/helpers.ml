(* Shared scaffolding for the test suites. *)

open Covirt_hw

let mib = Covirt_sim.Units.mib
let gib = Covirt_sim.Units.gib

let small_machine ?(seed = 7) () =
  Machine.create ~seed ~zones:2 ~cores_per_zone:2 ~mem_per_zone:(2 * gib)
    ~host_reserved_per_zone:(128 * mib) ()

(* A full co-kernel stack on a small machine: hobbes + optional covirt +
   one booted kitten enclave on cores 1 and 2 (core 0 is the host). *)
type stack = {
  machine : Machine.t;
  hobbes : Covirt_hobbes.Hobbes.t;
  controller : Covirt.Controller.t;
  enclave : Covirt_pisces.Enclave.t;
  kitten : Covirt_kitten.Kitten.t;
}

let boot_stack ?(seed = 7) ?(config = Covirt.Config.full) ?(cores = [ 1; 2 ])
    ?(mem = [ (0, 256 * mib); (1, 256 * mib) ]) () =
  let machine = small_machine ~seed () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config
  in
  match
    Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"t0" ~cores ~mem ()
  with
  | Error e -> Alcotest.failf "boot_stack: %s" e
  | Ok (enclave, kitten) -> { machine; hobbes; controller; enclave; kitten }

let second_enclave stack ?(name = "t1") ?(cores = [ 3 ])
    ?(mem = [ (1, 128 * mib) ]) () =
  match Covirt_hobbes.Hobbes.launch_enclave stack.hobbes ~name ~cores ~mem () with
  | Error e -> Alcotest.failf "second_enclave: %s" e
  | Ok pair -> pair

let ctx stack core = Covirt_kitten.Kitten.context stack.kitten ~core

let pisces stack = Covirt_hobbes.Hobbes.pisces stack.hobbes

let check_region = Alcotest.testable Region.pp Region.equal

let expect_crash name f =
  match f () with
  | exception Vmx.Vm_terminated _ -> ()
  | _ -> Alcotest.failf "%s: expected Vm_terminated" name

let expect_panic name f =
  match f () with
  | exception Machine.Node_panic _ -> ()
  | _ -> Alcotest.failf "%s: expected Node_panic" name

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
