(* mOS (embedded LWK) tests: the maximal-integration end of the
   architecture axis, still protected by the unmodified controller. *)

open Covirt_hw
open Covirt_pisces
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let boot_mos ~config () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  (* direct host services: mOS calls them, no channel *)
  let host_syscall ~number ~arg = number + arg in
  let kernel, get = Covirt_mos.Mos.make_kernel ~host_syscall () in
  let enclave =
    Pisces.create_enclave pisces ~name:"mos" ~cores:[ 1 ] ~mem:[ (0, 256 * mib) ] ()
    |> Result.get_ok
  in
  Pisces.boot pisces enclave ~kernel |> Result.get_ok;
  (machine, pisces, controller, enclave, Option.get (get ()))

let test_boot_and_direct_syscalls () =
  let machine, _, _, enclave, mos = boot_mos ~config:Covirt.Config.mem_ipi () in
  Alcotest.(check bool) "running protected" true (Enclave.is_running enclave);
  Alcotest.(check bool) "guest mode" true (Cpu.in_guest (Machine.cpu machine 1));
  let ret = Covirt_mos.Mos.syscall mos ~core:1 ~number:40 ~arg:2 in
  Alcotest.(check int) "direct dispatch" 42 ret;
  Alcotest.(check int) "counted" 1 (Covirt_mos.Mos.syscalls_direct mos);
  (* direct integration is the cheapest syscall path of all four
     architectures *)
  let cpu = Machine.cpu machine 1 in
  let t0 = Cpu.rdtsc cpu in
  ignore (Covirt_mos.Mos.syscall mos ~core:1 ~number:39 ~arg:0 : int);
  Alcotest.(check bool) "cheaper than a channel hop" true
    (Cpu.rdtsc cpu - t0 < 1000)

let test_shared_direct_map_reaches_everything_natively () =
  let _, _, _, _, mos = boot_mos ~config:Covirt.Config.native () in
  (* mOS's own paging never stops it: the map is the host's *)
  Helpers.expect_panic "native wild write kills the node" (fun () ->
      Covirt_mos.Mos.wild_write mos ~core:1 0x3000)

let test_covirt_contains_the_embedded_lwk () =
  let machine, pisces, controller, enclave, mos =
    boot_mos ~config:Covirt.Config.mem ()
  in
  (match
     Pisces.run_guarded pisces (fun () ->
         Covirt_mos.Mos.wild_write mos ~core:1 0x3000)
   with
  | Error crash ->
      Alcotest.(check int) "contained" enclave.Enclave.id crash.Pisces.enclave_id
  | Ok () -> Alcotest.fail "not contained");
  Alcotest.(check bool) "node alive" true (Machine.panicked machine = None);
  Alcotest.(check bool) "report" true
    (Covirt.reports controller ~enclave_id:enclave.Enclave.id <> [])

let test_shared_state_corruption_contained () =
  (* the mOS-specific desync: shared resource state scribbled so the
     LWK believes it owns foreign memory — no protocol violation ever
     happened, and only the EPT notices *)
  let _, pisces, _, enclave, mos = boot_mos ~config:Covirt.Config.mem () in
  let foreign = Region.make ~base:(1024 * mib) ~len:(2 * mib) in
  Covirt_mos.Mos.corrupt_shared_state mos foreign;
  Alcotest.(check bool) "LWK believes the lie" true
    (Covirt_mos.Mos.believes mos foreign.Region.base);
  match
    Pisces.run_guarded pisces (fun () ->
        Covirt_mos.Mos.wild_write mos ~core:1 foreign.Region.base)
  with
  | Error crash ->
      Alcotest.(check int) "contained" enclave.Enclave.id crash.Pisces.enclave_id
  | Ok () -> Alcotest.fail "shared-state lie not contained"

let test_memory_sync_via_shared_state () =
  let _, pisces, _, enclave, mos = boot_mos ~config:Covirt.Config.mem () in
  let region =
    Pisces.add_memory pisces enclave ~zone:1 ~len:(16 * mib) |> Result.get_ok
  in
  Alcotest.(check bool) "believed" true
    (Covirt_mos.Mos.believes mos region.Region.base);
  Pisces.remove_memory pisces enclave region |> Result.get_ok;
  Alcotest.(check bool) "revoked" true
    (not (Covirt_mos.Mos.believes mos region.Region.base))

let () =
  Alcotest.run "mos"
    [
      ( "mos",
        [
          Alcotest.test_case "boot and direct syscalls" `Quick
            test_boot_and_direct_syscalls;
          Alcotest.test_case "shared direct map, native" `Quick
            test_shared_direct_map_reaches_everything_natively;
          Alcotest.test_case "covirt contains" `Quick
            test_covirt_contains_the_embedded_lwk;
          Alcotest.test_case "shared-state corruption" `Quick
            test_shared_state_corruption_contained;
          Alcotest.test_case "memory sync" `Quick test_memory_sync_via_shared_state;
        ] );
    ]
