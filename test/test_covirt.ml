(* Covirt core tests: configuration, command queue, whitelist, VMCS
   builder, controller hook behaviour, EPT lifecycle under the
   controller, per-enclave overrides. *)

open Covirt_hw
open Covirt_pisces
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let test_config_presets () =
  let names = List.map fst Covirt.Config.presets in
  Alcotest.(check (list string)) "paper order"
    [ "native"; "none"; "mem"; "ipi"; "mem+ipi" ] names;
  Alcotest.(check string) "native name" "native"
    (Covirt.Config.name Covirt.Config.native);
  Alcotest.(check string) "none name" "none" (Covirt.Config.name Covirt.Config.none);
  Alcotest.(check string) "mem+ipi name" "mem+ipi"
    (Covirt.Config.name Covirt.Config.mem_ipi);
  Alcotest.(check bool) "full has msr+io" true
    (Covirt.Config.full.Covirt.Config.msr && Covirt.Config.full.Covirt.Config.io)

let test_command_queue_bounds () =
  let q = Covirt.Command.create_queue () in
  let region = Region.make ~base:0 ~len:4096 in
  for _ = 1 to Covirt.Command.slots do
    match Covirt.Command.enqueue q (Covirt.Command.Flush_tlb region) with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done;
  Alcotest.(check bool) "full queue rejects" true
    (Result.is_error (Covirt.Command.enqueue q Covirt.Command.Flush_tlb_all));
  Alcotest.(check int) "pending" Covirt.Command.slots (Covirt.Command.pending q);
  (match Covirt.Command.dequeue q with
  | Some (Covirt.Command.Flush_tlb _) -> ()
  | _ -> Alcotest.fail "fifo order broken");
  Alcotest.(check int) "enqueued total" Covirt.Command.slots
    (Covirt.Command.enqueued_total q)

let test_whitelist_semantics () =
  let wl = Covirt.Whitelist.create ~enclave_cores:[ 1; 2 ] in
  let permits ~dest ~vector ~kind =
    Covirt.Whitelist.permits wl ~icr:{ Apic.dest; vector; kind }
  in
  Alcotest.(check bool) "intra-enclave fixed ok" true
    (permits ~dest:2 ~vector:0x99 ~kind:Apic.Fixed);
  Alcotest.(check bool) "cross-enclave denied" false
    (permits ~dest:3 ~vector:0x41 ~kind:Apic.Fixed);
  Covirt.Whitelist.grant wl ~vector:0x41 ~dest:3;
  Alcotest.(check bool) "granted ok" true
    (permits ~dest:3 ~vector:0x41 ~kind:Apic.Fixed);
  Alcotest.(check bool) "other vector still denied" false
    (permits ~dest:3 ~vector:0x42 ~kind:Apic.Fixed);
  Covirt.Whitelist.revoke wl ~vector:0x41;
  Alcotest.(check bool) "revoked" false (permits ~dest:3 ~vector:0x41 ~kind:Apic.Fixed);
  (* reset-class never crosses *)
  Covirt.Whitelist.grant wl ~vector:0 ~dest:3;
  Alcotest.(check bool) "INIT denied outside" false
    (permits ~dest:3 ~vector:0 ~kind:Apic.Init);
  Alcotest.(check bool) "NMI inside allowed" true
    (permits ~dest:1 ~vector:2 ~kind:Apic.Nmi)

let test_vmcs_builder_validation () =
  let enclave = Enclave.make ~id:1 ~name:"x" ~cores:[ 1 ] in
  let params =
    Boot_params.make_pisces ~enclave_id:1 ~entry_addr:(17 * mib)
      ~assigned_cores:[ 1 ]
      ~assigned_memory:[ Region.make ~base:(16 * mib) ~len:(64 * mib) ]
      ~channel:(Ctrl_channel.create ()) ~timer_hz:10.0
  in
  Alcotest.check_raises "memory without ept"
    (Invalid_argument "Vmcs_builder.build: memory protection needs EPT")
    (fun () ->
      ignore
        (Covirt.Vmcs_builder.build ~enclave ~params ~core:1
           ~config:Covirt.Config.mem ~ept:None));
  let vmcs =
    Covirt.Vmcs_builder.build ~enclave ~params ~core:1
      ~config:Covirt.Config.mem_ipi ~ept:(Some (Ept.create ()))
  in
  Alcotest.(check int) "entry rip mirrors trampoline" (17 * mib)
    vmcs.Vmcs.guest.Vmcs.entry_rip;
  Alcotest.(check bool) "long mode" true vmcs.Vmcs.guest.Vmcs.long_mode;
  (match vmcs.Vmcs.controls.Vmcs.vapic with
  | Vmcs.Vapic_piv _ -> ()
  | _ -> Alcotest.fail "expected PIV mode");
  let bp = Covirt.Vmcs_builder.covirt_boot_params ~params in
  Alcotest.(check int) "8KB stack" 8192
    bp.Boot_params.hypervisor_stack.Region.len;
  Alcotest.(check bool) "wraps pisces params" true
    (bp.Boot_params.pisces_params == params)

let test_controller_prebuilds_ept () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  match
    Covirt.Controller.instance_for s.Helpers.controller
      ~enclave_id:s.Helpers.enclave.Enclave.id
  with
  | None -> Alcotest.fail "no instance"
  | Some inst -> (
      match inst.Covirt.Controller.ept_mgr with
      | None -> Alcotest.fail "no EPT for mem config"
      | Some mgr ->
          Alcotest.(check int) "EPT covers assigned memory"
            (Region.Set.total_bytes (Enclave.accessible s.Helpers.enclave))
            (Covirt.Ept_manager.mapped_bytes mgr);
          let n4k, n2m, n1g = Covirt.Ept_manager.leaf_counts mgr in
          Alcotest.(check bool) "coalesced (few leaves)" true
            (n4k = 0 && n2m + n1g < 600))

let test_controller_native_config_no_instance () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  Alcotest.(check bool) "no instance for native" true
    (Covirt.Controller.instance_for s.Helpers.controller
       ~enclave_id:s.Helpers.enclave.Enclave.id
    = None);
  (* and the kernel really runs in host (non-VMX) mode *)
  Alcotest.(check bool) "not in guest mode" true
    (not (Cpu.in_guest (Machine.cpu s.Helpers.machine 1)))

let test_controller_guest_mode_when_enabled () =
  let s = Helpers.boot_stack ~config:Covirt.Config.none () in
  Alcotest.(check bool) "guest mode" true
    (Cpu.in_guest (Machine.cpu s.Helpers.machine 1));
  Alcotest.(check bool) "second core too" true
    (Cpu.in_guest (Machine.cpu s.Helpers.machine 2))

let test_ept_tracks_add_remove () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  let inst =
    Option.get
      (Covirt.Controller.instance_for s.Helpers.controller
         ~enclave_id:s.Helpers.enclave.Enclave.id)
  in
  let mgr = Option.get inst.Covirt.Controller.ept_mgr in
  let before = Covirt.Ept_manager.mapped_bytes mgr in
  let region =
    match Pisces.add_memory p s.Helpers.enclave ~zone:1 ~len:(16 * mib) with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "grown" (before + (16 * mib))
    (Covirt.Ept_manager.mapped_bytes mgr);
  (match Pisces.remove_memory p s.Helpers.enclave region with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "shrunk" before (Covirt.Ept_manager.mapped_bytes mgr)

let test_unmap_flushes_all_cores () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  let region =
    match Pisces.add_memory p s.Helpers.enclave ~zone:1 ~len:(16 * mib) with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let flushes_before =
    Covirt.Controller.total_flush_commands s.Helpers.controller
  in
  (match Pisces.remove_memory p s.Helpers.enclave region with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let flushes =
    Covirt.Controller.total_flush_commands s.Helpers.controller - flushes_before
  in
  (* one flush command per enclave core *)
  Alcotest.(check int) "both cores flushed" 2 flushes

let test_map_requires_no_hypervisor_invocation () =
  (* Additions are asynchronous: no NMI exits on the enclave cores. *)
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  let inst =
    Option.get
      (Covirt.Controller.instance_for s.Helpers.controller
         ~enclave_id:s.Helpers.enclave.Enclave.id)
  in
  let nmi_exits () =
    List.fold_left
      (fun acc (_, hv) ->
        acc + (Covirt.Hypervisor.vmcs hv).Vmcs.stats.Vmcs.exits_nmi)
      0 inst.Covirt.Controller.hypervisors
  in
  let before = nmi_exits () in
  (match Pisces.add_memory p s.Helpers.enclave ~zone:1 ~len:(16 * mib) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "no hypervisor invocation on map" before (nmi_exits ())

let test_per_enclave_override () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
      ~config:Covirt.Config.full
  in
  Covirt.Controller.set_override controller ~enclave_name:"legacy"
    Covirt.Config.native;
  (match
     Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"legacy" ~cores:[ 1 ]
       ~mem:[ (0, 64 * mib) ] ()
   with
  | Error e -> Alcotest.fail e
  | Ok _ ->
      Alcotest.(check bool) "override: native" true
        (not (Cpu.in_guest (Machine.cpu machine 1))));
  match
    Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"protected" ~cores:[ 2 ]
      ~mem:[ (0, 64 * mib) ] ()
  with
  | Error e -> Alcotest.fail e
  | Ok _ ->
      Alcotest.(check bool) "default: guest" true
        (Cpu.in_guest (Machine.cpu machine 2))

let test_double_attach_rejected () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _c1 =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config:Covirt.Config.mem
  in
  Alcotest.check_raises "second covirt rejected"
    (Invalid_argument "Hooks.set_boot_interposer: already installed") (fun () ->
      ignore
        (Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes)
           ~config:Covirt.Config.mem))

let test_detach_allows_reattach () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let c1 =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config:Covirt.Config.mem
  in
  Covirt.disable c1;
  let _c2 =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config:Covirt.Config.mem
  in
  ()

let test_reports_archived_after_destroy () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  let ctx = Helpers.ctx s 1 in
  let result =
    Pisces.run_guarded p (fun () -> Covirt_kitten.Kitten.store_addr ctx 0x3000)
  in
  Alcotest.(check bool) "crashed" true (Result.is_error result);
  let reports =
    Covirt.reports s.Helpers.controller ~enclave_id:s.Helpers.enclave.Enclave.id
  in
  Alcotest.(check int) "one report survives reclaim" 1 (List.length reports);
  match reports with
  | [ r ] ->
      Alcotest.(check bool) "memory violation" true
        (r.Covirt.Fault_report.kind = Covirt.Fault_report.Memory_violation);
      Alcotest.(check bool) "fatal" true r.Covirt.Fault_report.fatal
  | _ -> Alcotest.fail "unexpected reports"

let () =
  Alcotest.run "covirt"
    [
      ( "config",
        [ Alcotest.test_case "presets" `Quick test_config_presets ] );
      ( "command",
        [ Alcotest.test_case "queue bounds" `Quick test_command_queue_bounds ] );
      ( "whitelist",
        [ Alcotest.test_case "semantics" `Quick test_whitelist_semantics ] );
      ( "vmcs",
        [ Alcotest.test_case "builder" `Quick test_vmcs_builder_validation ] );
      ( "controller",
        [
          Alcotest.test_case "prebuilds EPT" `Quick test_controller_prebuilds_ept;
          Alcotest.test_case "native: no instance" `Quick
            test_controller_native_config_no_instance;
          Alcotest.test_case "enabled: guest mode" `Quick
            test_controller_guest_mode_when_enabled;
          Alcotest.test_case "EPT tracks add/remove" `Quick
            test_ept_tracks_add_remove;
          Alcotest.test_case "unmap flushes all cores" `Quick
            test_unmap_flushes_all_cores;
          Alcotest.test_case "map is asynchronous" `Quick
            test_map_requires_no_hypervisor_invocation;
          Alcotest.test_case "per-enclave override" `Quick
            test_per_enclave_override;
          Alcotest.test_case "double attach rejected" `Quick
            test_double_attach_rejected;
          Alcotest.test_case "detach/reattach" `Quick test_detach_allows_reattach;
          Alcotest.test_case "reports archived" `Quick
            test_reports_archived_after_destroy;
        ] );
    ]
