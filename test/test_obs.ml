(* The observability layer's contract tests:
   - histogram quantiles against a sorted-array oracle
   - label cardinality bounds (overflow series, nothing lost)
   - snapshot-diff algebra (identity, delta correctness)
   - single-branch disabled path records nothing
   - end-to-end exit metrics from a protected run
   - Chrome trace_event export validity
   - and the headline invariant: enabling observability leaves the
     golden transcript bit-identical (recording is measurement, not
     model). *)

open Covirt_obs
open Covirt_test_util

let fresh () =
  Covirt_obs.disable ();
  Covirt_obs.reset ()

(* ------------------------------------------------------------------ *)
(* Histogram quantiles vs oracle.                                      *)

let test_quantile_oracle () =
  fresh ();
  Metrics.enable ();
  let h = Metrics.(unlabeled (histogram "t.quantile")) in
  let rng = Covirt_sim.Rng.create ~seed:11 in
  let n = 10_000 in
  let samples =
    Array.init n (fun _ ->
        (* log-uniform over [1, 1e6]: exercises many buckets *)
        exp (Covirt_sim.Rng.float rng *. log 1e6))
  in
  Array.iter (fun v -> Metrics.observe h v) samples;
  let snap = Metrics.snapshot () in
  let hist =
    match Metrics.find snap "t.quantile" with
    | [ (_, Metrics.Histogram h) ] -> h
    | _ -> Alcotest.fail "expected one histogram series"
  in
  Alcotest.(check int) "all samples" n hist.Metrics.Hist.n;
  (* Geometric buckets with base 1.15 bound the relative quantile error
     by one bucket's growth; allow a whisker on top for the oracle's
     rank interpolation. *)
  let tolerance = 1.16 in
  List.iter
    (fun p ->
      let est = Metrics.Hist.quantile hist ~p in
      let oracle = Covirt_sim.Stats.percentile samples ~p in
      let ratio = est /. oracle in
      if ratio > tolerance || ratio < 1. /. tolerance then
        Alcotest.failf "p%.0f: estimate %.2f vs oracle %.2f (ratio %.3f)" p
          est oracle ratio)
    [ 50.; 90.; 95.; 99. ];
  (* The maximum is tracked exactly, not bucketed. *)
  let max_oracle = Array.fold_left Float.max 0. samples in
  Alcotest.(check (float 1e-9))
    "p100 = exact max" max_oracle
    (Metrics.Hist.quantile hist ~p:100.)

let test_quantile_empty () =
  fresh ();
  Metrics.enable ();
  ignore Metrics.(unlabeled (histogram "t.empty"));
  match Metrics.find (Metrics.snapshot ()) "t.empty" with
  | [ (_, Metrics.Histogram h) ] ->
      Alcotest.(check (float 0.)) "empty p50" 0. (Metrics.Hist.quantile h ~p:50.);
      Alcotest.(check bool) "is_zero" true (Metrics.Hist.is_zero h)
  | _ -> Alcotest.fail "expected one histogram series"

(* ------------------------------------------------------------------ *)
(* Cardinality bounds.                                                 *)

let test_cardinality_bound () =
  fresh ();
  Metrics.enable ();
  let fam = Metrics.counter ~max_series:8 "t.card" in
  for i = 0 to 19 do
    Metrics.add (Metrics.cell fam { Metrics.no_label with enclave = i }) 1
  done;
  Alcotest.(check int) "series capped" 8 (Metrics.series_count fam);
  Alcotest.(check int) "drops counted" 12 (Metrics.dropped_series fam);
  (* Nothing is lost: overflow labels share one series, so the family
     total still accounts for every increment. *)
  Alcotest.(check int)
    "total preserved" 20
    (Metrics.total_counter (Metrics.snapshot ()) "t.card")

(* ------------------------------------------------------------------ *)
(* Snapshot-diff algebra.                                              *)

let test_diff_identity () =
  fresh ();
  Metrics.enable ();
  let c = Metrics.(unlabeled (counter "t.diff.c")) in
  let h = Metrics.(unlabeled (histogram "t.diff.h")) in
  let g = Metrics.(unlabeled (gauge "t.diff.g")) in
  Metrics.add c 7;
  Metrics.observe h 123.;
  Metrics.set g 3.5;
  let s = Metrics.snapshot () in
  Alcotest.(check bool)
    "diff s s = 0" true
    (Metrics.is_zero (Metrics.diff ~before:s ~after:s))

let test_diff_delta () =
  fresh ();
  Metrics.enable ();
  let c = Metrics.(unlabeled (counter "t.delta")) in
  let h = Metrics.(unlabeled (histogram "t.delta.h")) in
  Metrics.add c 5;
  Metrics.observe h 10.;
  let before = Metrics.snapshot () in
  Metrics.add c 3;
  Metrics.observe h 20.;
  Metrics.observe h 30.;
  let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  Alcotest.(check int) "counter delta" 3 (Metrics.total_counter d "t.delta");
  (match Metrics.find d "t.delta.h" with
  | [ (_, Metrics.Histogram hd) ] ->
      Alcotest.(check int) "hist delta n" 2 hd.Metrics.Hist.n;
      Alcotest.(check (float 1e-9)) "hist delta sum" 50. hd.Metrics.Hist.sum
  | _ -> Alcotest.fail "expected histogram series in diff");
  Alcotest.(check bool) "delta not zero" false (Metrics.is_zero d)

(* ------------------------------------------------------------------ *)
(* Disabled path records nothing.                                      *)

let test_disabled_records_nothing () =
  fresh ();
  (* Drive the instrumented TLB and EPT paths with recording off. *)
  let open Covirt_hw in
  let model = Cost_model.default in
  let tlb = Tlb.create ~model ~rng:(Covirt_sim.Rng.create ~seed:3) in
  Tlb.install tlb 0x200000 ~page_size:Addr.Page_2m;
  ignore (Tlb.lookup tlb 0x200400);
  ignore (Tlb.lookup tlb 0x999999000);
  Tlb.flush_all tlb;
  let mib = Covirt_sim.Units.mib in
  let ept = Ept.create () in
  Ept.map_region ept (Region.make ~base:0 ~len:(64 * mib));
  ignore (Ept.translate ept 0x1000 ~access:`Read);
  ignore (Ept.translate ept (512 * mib) ~access:`Read);
  Alcotest.(check bool)
    "nothing recorded while disabled" true
    (Metrics.is_zero (Metrics.snapshot ()))

(* ------------------------------------------------------------------ *)
(* End-to-end: a protected run populates exit metrics.                 *)

let test_protected_run_metrics () =
  fresh ();
  Covirt_obs.enable ();
  let before = Metrics.snapshot () in
  let s = Helpers.boot_stack () in
  (match
     Covirt_pisces.Pisces.run_guarded (Helpers.pisces s) (fun () ->
         Covirt_kitten.Kitten.wrmsr_sensitive (Helpers.ctx s 1))
   with
  | Error _ -> () (* contained kill, as the full config demands *)
  | Ok () -> Alcotest.fail "wrmsr should have been contained");
  let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  Alcotest.(check bool)
    "vm exits recorded" true
    (Metrics.total_counter d "vmexit.count" > 0);
  (match Metrics.merged_hist d "vmexit.cycles" ~dim:"msr-access" with
  | Some h ->
      Alcotest.(check bool) "msr exit latency sampled" true
        (h.Metrics.Hist.n >= 1 && h.Metrics.Hist.max_v > 0.)
  | None -> Alcotest.fail "no msr-access latency histogram");
  Alcotest.(check bool)
    "fault report counted" true
    (Metrics.total_counter d "fault.report" >= 1);
  fresh ()

(* ------------------------------------------------------------------ *)
(* Exporter: Chrome trace_event JSON and JSONL.                        *)

let test_exporter_json () =
  fresh ();
  Exporter.set_capacity 4;
  Exporter.enable ();
  Span.complete ~name:"hlt" ~cat:"vmexit" ~pid:1 ~tid:2 ~ts:1700 ~dur:3400 ();
  Span.instant
    ~name:"fault:\"quoted\"\nline"
    ~cat:"fault" ~pid:1 ~tid:2 ~ts:5100
    ~args:[ ("detail", "x") ]
    ();
  let json = Exporter.to_chrome_json () in
  Alcotest.(check bool)
    "chrome envelope" true
    (String.length json > 0
    && String.sub json 0 15 = "{\"traceEvents\":"
    && json.[String.length json - 2] = '}');
  (* cycles -> µs at the default 1.7 GHz: 1700 cycles = 1 µs *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "ts converted" true (contains "\"ts\":1.000" json);
  Alcotest.(check bool) "dur converted" true (contains "\"dur\":2.000" json);
  Alcotest.(check bool) "escaping" true (contains "fault:\\\"quoted\\\"\\nline" json);
  Alcotest.(check bool) "no raw newline in strings" true
    (not (contains "fault:\"quoted\"" json));
  (* Overflow drops new events and counts them. *)
  for i = 0 to 9 do
    Span.instant ~name:"x" ~cat:"t" ~pid:0 ~tid:0 ~ts:i ()
  done;
  Alcotest.(check int) "buffer capped" 4 (Exporter.length ());
  Alcotest.(check int) "drops counted" 8 (Exporter.dropped ());
  let path = Filename.temp_file "covirt_obs" ".jsonl" in
  Exporter.write_jsonl ~path;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "jsonl one line per event" 4 !lines;
  fresh ()

let test_disabled_span_is_dropped () =
  fresh ();
  Exporter.set_capacity 16;
  Span.complete ~name:"x" ~cat:"t" ~pid:0 ~tid:0 ~ts:0 ~dur:1 ();
  Span.instant ~name:"y" ~cat:"t" ~pid:0 ~tid:0 ~ts:0 ();
  Alcotest.(check int) "no events when disabled" 0 (Exporter.length ())

(* ------------------------------------------------------------------ *)
(* The golden transcript is bit-identical with observability ON.       *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_with_obs_enabled () =
  fresh ();
  Covirt_obs.enable ();
  Exporter.set_capacity 65536;
  Exporter.enable ();
  Profiler.set_phase "golden";
  let expected = read_file "golden/translation.expected" in
  let actual = Covirt_harness.Golden.capture () in
  fresh ();
  if not (String.equal expected actual) then
    Alcotest.fail
      "golden transcript changed under observability — recording must never \
       charge simulated cycles or alter output"

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "quantiles vs oracle" `Quick test_quantile_oracle;
          Alcotest.test_case "empty histogram" `Quick test_quantile_empty;
          Alcotest.test_case "cardinality bound" `Quick test_cardinality_bound;
          Alcotest.test_case "diff identity" `Quick test_diff_identity;
          Alcotest.test_case "diff delta" `Quick test_diff_delta;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "protected run metrics" `Quick
            test_protected_run_metrics;
        ] );
      ( "exporter",
        [
          Alcotest.test_case "chrome json + jsonl" `Quick test_exporter_json;
          Alcotest.test_case "disabled spans dropped" `Quick
            test_disabled_span_is_dropped;
        ] );
      ( "golden",
        [
          Alcotest.test_case "bit-identical with obs on" `Slow
            test_golden_with_obs_enabled;
        ] );
    ]
