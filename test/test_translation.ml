(* Translation fast-path tests: set-associative TLB behaviour, walk-
   and covers-cache invalidation on the EPT, equivalence of cached and
   uncached translation, and the memoized bulk charge models. *)

open Covirt_hw

let k4 = Addr.page_size_4k
let m2 = Addr.page_size_2m
let mib = Covirt_sim.Units.mib

let make_tlb () =
  Tlb.create ~model:Cost_model.default ~rng:(Covirt_sim.Rng.create ~seed:7)

let test_geometry () =
  let tlb = make_tlb () in
  let sets, ways = Tlb.geometry tlb Addr.Page_4k in
  Alcotest.(check int) "4K capacity" Cost_model.default.Cost_model.dtlb_entries_4k
    (sets * ways);
  Alcotest.(check bool) "sets is a power of two" true (sets land (sets - 1) = 0)

let test_set_conflict_eviction () =
  let tlb = make_tlb () in
  let sets, ways = Tlb.geometry tlb Addr.Page_4k in
  (* Fill one set: vpns congruent mod [sets] all index the same set. *)
  let conflicting = List.init ways (fun i -> i * sets) in
  List.iter (fun vpn -> Tlb.install tlb (vpn * k4) ~page_size:Addr.Page_4k)
    conflicting;
  Alcotest.(check int) "set full" ways (Tlb.entry_count tlb);
  (* Touch the oldest entry so it becomes most-recently-used ... *)
  Alcotest.(check bool) "touch hit" true (Tlb.lookup tlb 0 <> None);
  (* ... then overflow the set: the victim must be the stalest way
     (vpn [sets], installed second), never the touched one. *)
  Tlb.install tlb (ways * sets * k4) ~page_size:Addr.Page_4k;
  Alcotest.(check int) "still full, one evicted" ways (Tlb.entry_count tlb);
  Alcotest.(check bool) "MRU survived" true (Tlb.lookup tlb 0 <> None);
  Alcotest.(check bool) "stalest evicted" true
    (Tlb.lookup tlb (sets * k4) = None);
  Alcotest.(check bool) "newcomer present" true
    (Tlb.lookup tlb (ways * sets * k4) <> None)

let test_install_refreshes_existing () =
  let tlb = make_tlb () in
  Tlb.install tlb (5 * k4) ~page_size:Addr.Page_4k;
  Tlb.install tlb (5 * k4) ~page_size:Addr.Page_4k;
  Alcotest.(check int) "no duplicate slot" 1 (Tlb.entry_count tlb)

let test_flush_range_precision () =
  let tlb = make_tlb () in
  Tlb.install tlb (5 * k4) ~page_size:Addr.Page_4k;
  Tlb.install tlb (6 * k4) ~page_size:Addr.Page_4k;
  Tlb.install tlb m2 ~page_size:Addr.Page_2m;
  (* One-page flush: only the exact page goes. *)
  Tlb.flush_range tlb (Region.make ~base:(6 * k4) ~len:k4);
  Alcotest.(check bool) "vpn 5 kept" true (Tlb.lookup tlb (5 * k4) <> None);
  Alcotest.(check bool) "vpn 6 flushed" true (Tlb.lookup tlb (6 * k4) = None);
  Alcotest.(check bool) "2M page kept" true (Tlb.lookup tlb (m2 + 0x40) <> None);
  (* A flush overlapping the 2M page's tail catches it even though the
     region starts mid-page. *)
  Tlb.flush_range tlb (Region.make ~base:(m2 + (17 * k4)) ~len:k4);
  Alcotest.(check bool) "2M page flushed by interior overlap" true
    (Tlb.lookup tlb (m2 + 0x40) = None);
  Alcotest.(check bool) "vpn 5 still kept" true (Tlb.lookup tlb (5 * k4) <> None)

let test_flush_range_wide () =
  let tlb = make_tlb () in
  let sets, _ = Tlb.geometry tlb Addr.Page_4k in
  (* Spread entries across every set, then flush a region wider than
     the set count: everything inside goes, everything outside stays. *)
  List.iter (fun i -> Tlb.install tlb (i * k4) ~page_size:Addr.Page_4k)
    (List.init sets Fun.id);
  Tlb.install tlb (4 * sets * k4) ~page_size:Addr.Page_4k;
  Tlb.flush_range tlb (Region.make ~base:0 ~len:(2 * sets * k4));
  Alcotest.(check int) "only the outsider survives" 1 (Tlb.entry_count tlb);
  Alcotest.(check bool) "outsider intact" true
    (Tlb.lookup tlb (4 * sets * k4) <> None)

(* ------------------------------------------------------------------ *)

let test_walk_cache_invalidation () =
  let ept = Ept.create () in
  Ept.map_region ept (Region.make ~base:0 ~len:m2);
  Alcotest.(check bool) "mapped" true
    (Result.is_ok (Ept.translate ept 0x1000 ~access:`Read));
  let hits0, _ = Ept.walk_cache_stats ept in
  Alcotest.(check bool) "second translate hits the cache" true
    (Result.is_ok (Ept.translate ept 0x1800 ~access:`Read)
    && fst (Ept.walk_cache_stats ept) > hits0);
  Ept.unmap_region ept (Region.make ~base:0 ~len:m2);
  (match Ept.translate ept 0x1000 ~access:`Read with
  | Error v -> Alcotest.(check bool) "unmapped" true (v.Ept.reason = `Not_mapped)
  | Ok _ -> Alcotest.fail "stale walk cache served an unmapped page");
  Ept.map_region ept (Region.make ~base:0 ~len:m2);
  Alcotest.(check bool) "remap visible" true
    (Result.is_ok (Ept.translate ept 0x1000 ~access:`Write))

let test_covers_memo_invalidation () =
  let ept = Ept.create () in
  Ept.map_region ept (Region.make ~base:0 ~len:m2);
  Alcotest.(check bool) "covered" true (Ept.covers ept ~base:0 ~len:m2);
  Alcotest.(check bool) "covered (memo)" true (Ept.covers ept ~base:0 ~len:m2);
  Ept.unmap_region ept (Region.make ~base:0 ~len:(16 * k4));
  Alcotest.(check bool) "hole visible despite memo" false
    (Ept.covers ept ~base:0 ~len:m2)

(* Property: with the walk cache on, every translate in a random
   map/unmap/translate interleaving answers exactly as the uncached
   reference does — including probes of stale windows right after the
   mutation that invalidated them. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (triple (oneofl [ `Map; `Unmap; `Probe ]) (int_range 0 600)
         (int_range 1 64)))

let prop_cached_equals_uncached =
  Covirt_test_util.Helpers.qtest ~count:80 "cached translate = uncached"
    gen_ops
    (fun ops ->
      let cached = Ept.create ~max_page:Addr.Page_2m () in
      let plain = Ept.create ~max_page:Addr.Page_2m ~walk_cache:false () in
      List.for_all
        (fun (op, page, pages) ->
          let r = Region.make ~base:(page * k4) ~len:(pages * k4) in
          match op with
          | `Map ->
              Ept.map_region cached r;
              Ept.map_region plain r;
              true
          | `Unmap ->
              Ept.unmap_region cached r;
              Ept.unmap_region plain r;
              true
          | `Probe ->
              List.for_all
                (fun i ->
                  let addr = (page + i) * k4 in
                  Ept.translate cached addr ~access:`Read
                  = Ept.translate plain addr ~access:`Read)
                (List.init 80 Fun.id))
        ops)

(* ------------------------------------------------------------------ *)

let make_machine () =
  Machine.create ~zones:1 ~cores_per_zone:1 ~mem_per_zone:(64 * mib)
    ~host_reserved_per_zone:(16 * mib) ()

let test_charge_memo_identical () =
  let m = make_machine () in
  let cpu = Machine.cpu m 0 in
  let charge () =
    let t0 = Cpu.rdtsc cpu in
    Machine.charge_random m cpu ~ops:5000 ~base:(32 * mib)
      ~working_set:(8 * mib) ~sharers:2 ~page_size:Addr.Page_2m;
    Cpu.rdtsc cpu - t0
  in
  let first = charge () in
  let second = charge () in
  Alcotest.(check int) "memoized charge is bit-identical" first second;
  let hits, misses = Charge_memo.stats m.Machine.charge_memo in
  Alcotest.(check bool) "memo hit on repeat" true (hits >= 1 && misses >= 1)

let test_charge_memo_invalidation () =
  let m = make_machine () in
  let cpu = Machine.cpu m 0 in
  let stream () =
    Machine.charge_stream m cpu ~base:(32 * mib) ~bytes:(4 * mib) ~sharers:1
      ~page_size:Addr.Page_2m
  in
  stream ();
  stream ();
  let _, misses_settled = Charge_memo.stats m.Machine.charge_memo in
  (* Background pressure changes the cost inputs: the memo must not
     serve the pre-pressure figure. *)
  Machine.set_background_streamers m ~zone:0 2;
  let t0 = Cpu.rdtsc cpu in
  stream ();
  let with_pressure = Cpu.rdtsc cpu - t0 in
  let _, misses_after = Charge_memo.stats m.Machine.charge_memo in
  Alcotest.(check bool) "new key after pressure change" true
    (misses_after > misses_settled);
  let t1 = Cpu.rdtsc cpu in
  stream ();
  let with_pressure' = Cpu.rdtsc cpu - t1 in
  Alcotest.(check int) "stable under pressure" with_pressure with_pressure'

let () =
  Alcotest.run "translation"
    [
      ( "tlb",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "set-conflict eviction" `Quick
            test_set_conflict_eviction;
          Alcotest.test_case "install refreshes" `Quick
            test_install_refreshes_existing;
          Alcotest.test_case "flush_range precision" `Quick
            test_flush_range_precision;
          Alcotest.test_case "flush_range wide" `Quick test_flush_range_wide;
        ] );
      ( "ept caches",
        [
          Alcotest.test_case "walk-cache invalidation" `Quick
            test_walk_cache_invalidation;
          Alcotest.test_case "covers-memo invalidation" `Quick
            test_covers_memo_invalidation;
          prop_cached_equals_uncached;
        ] );
      ( "charge memo",
        [
          Alcotest.test_case "identical charges" `Quick
            test_charge_memo_identical;
          Alcotest.test_case "invalidation on pressure" `Quick
            test_charge_memo_invalidation;
        ] );
    ]
