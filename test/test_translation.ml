(* Translation fast-path tests: set-associative TLB behaviour, walk-
   and covers-cache invalidation on the EPT, equivalence of cached and
   uncached translation, and the memoized bulk charge models. *)

open Covirt_hw

let k4 = Addr.page_size_4k
let m2 = Addr.page_size_2m
let mib = Covirt_sim.Units.mib

let make_tlb () =
  Tlb.create ~model:Cost_model.default ~rng:(Covirt_sim.Rng.create ~seed:7)

let test_geometry () =
  let tlb = make_tlb () in
  let sets, ways = Tlb.geometry tlb Addr.Page_4k in
  Alcotest.(check int) "4K capacity" Cost_model.default.Cost_model.dtlb_entries_4k
    (sets * ways);
  Alcotest.(check bool) "sets is a power of two" true (sets land (sets - 1) = 0)

let test_set_conflict_eviction () =
  let tlb = make_tlb () in
  let sets, ways = Tlb.geometry tlb Addr.Page_4k in
  (* Fill one set: vpns congruent mod [sets] all index the same set. *)
  let conflicting = List.init ways (fun i -> i * sets) in
  List.iter (fun vpn -> Tlb.install tlb (vpn * k4) ~page_size:Addr.Page_4k)
    conflicting;
  Alcotest.(check int) "set full" ways (Tlb.entry_count tlb);
  (* Touch the oldest entry so it becomes most-recently-used ... *)
  Alcotest.(check bool) "touch hit" true (Tlb.lookup tlb 0 <> None);
  (* ... then overflow the set: the victim must be the stalest way
     (vpn [sets], installed second), never the touched one. *)
  Tlb.install tlb (ways * sets * k4) ~page_size:Addr.Page_4k;
  Alcotest.(check int) "still full, one evicted" ways (Tlb.entry_count tlb);
  Alcotest.(check bool) "MRU survived" true (Tlb.lookup tlb 0 <> None);
  Alcotest.(check bool) "stalest evicted" true
    (Tlb.lookup tlb (sets * k4) = None);
  Alcotest.(check bool) "newcomer present" true
    (Tlb.lookup tlb (ways * sets * k4) <> None)

let test_install_refreshes_existing () =
  let tlb = make_tlb () in
  Tlb.install tlb (5 * k4) ~page_size:Addr.Page_4k;
  Tlb.install tlb (5 * k4) ~page_size:Addr.Page_4k;
  Alcotest.(check int) "no duplicate slot" 1 (Tlb.entry_count tlb)

let test_flush_range_precision () =
  let tlb = make_tlb () in
  Tlb.install tlb (5 * k4) ~page_size:Addr.Page_4k;
  Tlb.install tlb (6 * k4) ~page_size:Addr.Page_4k;
  Tlb.install tlb m2 ~page_size:Addr.Page_2m;
  (* One-page flush: only the exact page goes. *)
  Tlb.flush_range tlb (Region.make ~base:(6 * k4) ~len:k4);
  Alcotest.(check bool) "vpn 5 kept" true (Tlb.lookup tlb (5 * k4) <> None);
  Alcotest.(check bool) "vpn 6 flushed" true (Tlb.lookup tlb (6 * k4) = None);
  Alcotest.(check bool) "2M page kept" true (Tlb.lookup tlb (m2 + 0x40) <> None);
  (* A flush overlapping the 2M page's tail catches it even though the
     region starts mid-page. *)
  Tlb.flush_range tlb (Region.make ~base:(m2 + (17 * k4)) ~len:k4);
  Alcotest.(check bool) "2M page flushed by interior overlap" true
    (Tlb.lookup tlb (m2 + 0x40) = None);
  Alcotest.(check bool) "vpn 5 still kept" true (Tlb.lookup tlb (5 * k4) <> None)

let test_flush_range_wide () =
  let tlb = make_tlb () in
  let sets, _ = Tlb.geometry tlb Addr.Page_4k in
  (* Spread entries across every set, then flush a region wider than
     the set count: everything inside goes, everything outside stays. *)
  List.iter (fun i -> Tlb.install tlb (i * k4) ~page_size:Addr.Page_4k)
    (List.init sets Fun.id);
  Tlb.install tlb (4 * sets * k4) ~page_size:Addr.Page_4k;
  Tlb.flush_range tlb (Region.make ~base:0 ~len:(2 * sets * k4));
  Alcotest.(check int) "only the outsider survives" 1 (Tlb.entry_count tlb);
  Alcotest.(check bool) "outsider intact" true
    (Tlb.lookup tlb (4 * sets * k4) <> None)

(* ------------------------------------------------------------------ *)

let test_walk_cache_invalidation () =
  let ept = Ept.create () in
  Ept.map_region ept (Region.make ~base:0 ~len:m2);
  Alcotest.(check bool) "mapped" true
    (Result.is_ok (Ept.translate ept 0x1000 ~access:`Read));
  let hits0, _ = Ept.walk_cache_stats ept in
  Alcotest.(check bool) "second translate hits the cache" true
    (Result.is_ok (Ept.translate ept 0x1800 ~access:`Read)
    && fst (Ept.walk_cache_stats ept) > hits0);
  Ept.unmap_region ept (Region.make ~base:0 ~len:m2);
  (match Ept.translate ept 0x1000 ~access:`Read with
  | Error v -> Alcotest.(check bool) "unmapped" true (v.Ept.reason = `Not_mapped)
  | Ok _ -> Alcotest.fail "stale walk cache served an unmapped page");
  Ept.map_region ept (Region.make ~base:0 ~len:m2);
  Alcotest.(check bool) "remap visible" true
    (Result.is_ok (Ept.translate ept 0x1000 ~access:`Write))

let test_covers_memo_invalidation () =
  let ept = Ept.create () in
  Ept.map_region ept (Region.make ~base:0 ~len:m2);
  Alcotest.(check bool) "covered" true (Ept.covers ept ~base:0 ~len:m2);
  Alcotest.(check bool) "covered (memo)" true (Ept.covers ept ~base:0 ~len:m2);
  Ept.unmap_region ept (Region.make ~base:0 ~len:(16 * k4));
  Alcotest.(check bool) "hole visible despite memo" false
    (Ept.covers ept ~base:0 ~len:m2)

(* Property: with the walk cache on, every translate in a random
   map/unmap/translate interleaving answers exactly as the uncached
   reference does — including probes of stale windows right after the
   mutation that invalidated them. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 25)
      (triple (oneofl [ `Map; `Unmap; `Probe ]) (int_range 0 600)
         (int_range 1 64)))

let prop_cached_equals_uncached =
  Covirt_test_util.Helpers.qtest ~count:80 "cached translate = uncached"
    gen_ops
    (fun ops ->
      let cached = Ept.create ~max_page:Addr.Page_2m () in
      let plain = Ept.create ~max_page:Addr.Page_2m ~walk_cache:false () in
      List.for_all
        (fun (op, page, pages) ->
          let r = Region.make ~base:(page * k4) ~len:(pages * k4) in
          match op with
          | `Map ->
              Ept.map_region cached r;
              Ept.map_region plain r;
              true
          | `Unmap ->
              Ept.unmap_region cached r;
              Ept.unmap_region plain r;
              true
          | `Probe ->
              List.for_all
                (fun i ->
                  let addr = (page + i) * k4 in
                  Ept.translate cached addr ~access:`Read
                  = Ept.translate plain addr ~access:`Read)
                (List.init 80 Fun.id))
        ops)

(* ------------------------------------------------------------------ *)

let make_machine () =
  Machine.create ~zones:1 ~cores_per_zone:1 ~mem_per_zone:(64 * mib)
    ~host_reserved_per_zone:(16 * mib) ()

let test_charge_memo_identical () =
  let m = make_machine () in
  let cpu = Machine.cpu m 0 in
  let charge () =
    let t0 = Cpu.rdtsc cpu in
    Machine.charge_random m cpu ~ops:5000 ~base:(32 * mib)
      ~working_set:(8 * mib) ~sharers:2 ~page_size:Addr.Page_2m;
    Cpu.rdtsc cpu - t0
  in
  let first = charge () in
  let second = charge () in
  Alcotest.(check int) "memoized charge is bit-identical" first second;
  let hits, misses = Charge_memo.stats m.Machine.charge_memo in
  Alcotest.(check bool) "memo hit on repeat" true (hits >= 1 && misses >= 1)

let test_charge_memo_invalidation () =
  let m = make_machine () in
  let cpu = Machine.cpu m 0 in
  let stream () =
    Machine.charge_stream m cpu ~base:(32 * mib) ~bytes:(4 * mib) ~sharers:1
      ~page_size:Addr.Page_2m
  in
  stream ();
  stream ();
  let _, misses_settled = Charge_memo.stats m.Machine.charge_memo in
  (* Background pressure changes the cost inputs: the memo must not
     serve the pre-pressure figure. *)
  Machine.set_background_streamers m ~zone:0 2;
  let t0 = Cpu.rdtsc cpu in
  stream ();
  let with_pressure = Cpu.rdtsc cpu - t0 in
  let _, misses_after = Charge_memo.stats m.Machine.charge_memo in
  Alcotest.(check bool) "new key after pressure change" true
    (misses_after > misses_settled);
  let t1 = Cpu.rdtsc cpu in
  stream ();
  let with_pressure' = Cpu.rdtsc cpu - t1 in
  Alcotest.(check int) "stable under pressure" with_pressure with_pressure'

(* ------------------------------------------------------------------ *)
(* The zero-GC hot-path contract (DESIGN.md §13): warm TLB lookups,
   warm EPT translations and memoized bulk charges allocate exactly
   zero minor words — with observability off and on, and inside fleet
   shards at any domain count. *)

(* Minor words allocated by [reps] calls of [f], after a warmup that
   fills caches/memos and forces lazy metric cells.  [Gc.minor_words]
   boxes its own float result after sampling, so the [before] sample's
   box lands inside the window; the no-op calibration subtracts it,
   making "exactly zero" assertable. *)
let minor_words_of f reps =
  for _ = 1 to 128 do f () done;
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to reps do f () done;
  let after = Gc.minor_words () in
  after -. before

let noop () = ()

(* Exact-zero claims hold only under the native compiler; bytecode
   boxes float temporaries the optimizer keeps in registers. *)
let native = Sys.backend_type = Sys.Native

let alloc_words f =
  let reps = 5000 in
  let calib = minor_words_of noop reps in
  minor_words_of f reps -. calib

let check_zero_alloc name f =
  if native then Alcotest.(check (float 0.0)) name 0.0 (alloc_words f)

let with_obs f =
  Covirt_obs.Metrics.enable ();
  Fun.protect ~finally:Covirt_obs.Metrics.disable f

let make_warm_tlb () =
  let tlb = make_tlb () in
  let sets, ways = Tlb.geometry tlb Addr.Page_4k in
  let n = sets * ways in
  for i = 0 to n - 1 do
    Tlb.install tlb (i * k4) ~page_size:Addr.Page_4k
  done;
  (tlb, n)

let test_tlb_lookup_zero_alloc () =
  let tlb, n = make_warm_tlb () in
  let i = ref 0 in
  check_zero_alloc "warm Tlb.lookup allocates nothing" (fun () ->
      incr i;
      ignore (Tlb.lookup tlb ((!i land (n - 1)) * k4)));
  check_zero_alloc "Tlb.lookup_hit allocates nothing" (fun () ->
      incr i;
      ignore (Tlb.lookup_hit tlb ((!i land (n - 1)) * k4)));
  check_zero_alloc "Tlb.lookup miss allocates nothing" (fun () ->
      incr i;
      ignore (Tlb.lookup tlb ((n + (!i land 1023)) * k4)))

let test_tlb_lookup_zero_alloc_obs_on () =
  with_obs (fun () ->
      let tlb, n = make_warm_tlb () in
      let i = ref 0 in
      check_zero_alloc "warm Tlb.lookup, metrics recording" (fun () ->
          incr i;
          ignore (Tlb.lookup tlb ((!i land (n - 1)) * k4)));
      check_zero_alloc "Tlb.lookup miss, metrics recording" (fun () ->
          incr i;
          ignore (Tlb.lookup tlb ((n + (!i land 1023)) * k4))))

let make_warm_ept () =
  let len = 8 * mib in
  let ept = Ept.create ~max_page:Addr.Page_4k () in
  Ept.map_region ept (Region.make ~base:0 ~len);
  for p = 0 to (len / k4) - 1 do
    ignore (Ept.translate_code ept (p * k4) ~access:`Read)
  done;
  (ept, len)

let test_ept_translate_zero_alloc () =
  let ept, len = make_warm_ept () in
  let i = ref 0 in
  check_zero_alloc "warm Ept.translate_code allocates nothing" (fun () ->
      incr i;
      ignore
        (Ept.translate_code ept ((!i * k4 + 8) land (len - 1)) ~access:`Read))

let test_ept_translate_zero_alloc_obs_on () =
  with_obs (fun () ->
      let ept, len = make_warm_ept () in
      let i = ref 0 in
      check_zero_alloc "warm Ept.translate_code, metrics recording"
        (fun () ->
          incr i;
          ignore
            (Ept.translate_code ept
               ((!i * k4 + 8) land (len - 1))
               ~access:`Read)))

let test_charge_zero_alloc () =
  let m = make_machine () in
  let cpu = Machine.cpu m 0 in
  check_zero_alloc "memoized charge_random allocates nothing" (fun () ->
      Machine.charge_random m cpu ~ops:100 ~base:(32 * mib)
        ~working_set:(8 * mib) ~sharers:2 ~page_size:Addr.Page_2m);
  check_zero_alloc "memoized charge_stream allocates nothing" (fun () ->
      Machine.charge_stream m cpu ~base:(32 * mib) ~bytes:(4 * mib)
        ~sharers:1 ~page_size:Addr.Page_2m)

let test_charge_zero_alloc_obs_on () =
  with_obs (fun () ->
      let m = make_machine () in
      let cpu = Machine.cpu m 0 in
      check_zero_alloc "memoized charge_random, metrics recording"
        (fun () ->
          Machine.charge_random m cpu ~ops:100 ~base:(32 * mib)
            ~working_set:(8 * mib) ~sharers:2 ~page_size:Addr.Page_2m))

(* The same contract must hold inside fleet shards, whatever the
   domain placement: each shard builds its own machine stack and
   measures its own warm path in its own domain. *)
let test_fleet_sharded_zero_alloc () =
  List.iter
    (fun domains ->
      let words =
        Covirt_fleet.Fleet.map ~domains ~seed:99 ~shards:4
          (fun ~shard_seed ~index ->
            ignore shard_seed;
            ignore index;
            let m = make_machine () in
            let cpu = Machine.cpu m 0 in
            let tlb, n = make_warm_tlb () in
            let i = ref 0 in
            let work () =
              incr i;
              ignore (Tlb.lookup tlb ((!i land (n - 1)) * k4));
              Machine.charge_random m cpu ~ops:100 ~base:(32 * mib)
                ~working_set:(8 * mib) ~sharers:2 ~page_size:Addr.Page_2m
            in
            alloc_words work)
      in
      if native then
        Array.iteri
          (fun s w ->
            Alcotest.(check (float 0.0))
              (Printf.sprintf "shard %d at domains:%d allocates nothing" s
                 domains)
              0.0 w)
          words)
    [ 1; 2; 7 ]

(* ------------------------------------------------------------------ *)
(* The walk-cache generation counter must never move on read-only
   paths — a read that bumped it would re-invalidate the cache on
   every probe, which is exactly the warm-EPT-slower-than-cold anomaly
   the zero-GC rewrite removed.  Checked with observability recording,
   so metric emission can't sneak a bump in either. *)
let test_generation_stable_under_reads () =
  with_obs (fun () ->
      let ept = Ept.create ~max_page:Addr.Page_4k () in
      Ept.map_region ept (Region.make ~base:0 ~len:m2);
      Ept.map_region ept ~perms:Ept.ro
        (Region.make ~base:m2 ~len:m2);
      let gen = Ept.generation ept in
      for i = 0 to 4095 do
        (* hits, permission denials, and hard misses *)
        ignore (Ept.translate_code ept ((i land 511) * k4) ~access:`Read);
        ignore (Ept.translate_code ept (m2 + (i land 511) * k4) ~access:`Write);
        ignore (Ept.translate_code ept ((4 * m2) + (i * k4)) ~access:`Read);
        ignore (Ept.covers ept ~base:0 ~len:m2);
        ignore (Ept.page_size_at ept ((i land 511) * k4))
      done;
      Alcotest.(check int) "generation unchanged by read-only paths" gen
        (Ept.generation ept);
      let hits, _ = Ept.walk_cache_stats ept in
      Alcotest.(check bool) "walk cache actually hit" true (hits > 0))

(* Timing regression for the anomaly itself: a warm (walk-cache hit)
   translate must not cost more than the uncached full walk it
   short-circuits.  Floor latency (min of N) on both sides keeps the
   comparison robust against preemption noise; the real margin is
   several-fold, so no slack factor is needed. *)
let test_warm_not_slower_than_uncached () =
  let len = 8 * mib in
  let build walk_cache =
    let ept = Ept.create ~max_page:Addr.Page_4k ~walk_cache () in
    Ept.map_region ept (Region.make ~base:0 ~len);
    for p = 0 to (len / k4) - 1 do
      ignore (Ept.translate_code ept (p * k4) ~access:`Read)
    done;
    ept
  in
  let warm = build true in
  let cold = build false in
  let floor_ns ept =
    let iters = 50_000 in
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Unix.gettimeofday () in
      for i = 1 to iters do
        ignore
          (Ept.translate_code ept ((i * k4 + 8) land (len - 1)) ~access:`Read)
      done;
      let ns = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
      if ns < !best then best := ns
    done;
    !best
  in
  let cold_ns = floor_ns cold in
  let warm_ns = floor_ns warm in
  Alcotest.(check bool)
    (Printf.sprintf "warm translate (%.1fns) <= uncached walk (%.1fns)"
       warm_ns cold_ns)
    true (warm_ns <= cold_ns)

let () =
  Alcotest.run "translation"
    [
      ( "tlb",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "set-conflict eviction" `Quick
            test_set_conflict_eviction;
          Alcotest.test_case "install refreshes" `Quick
            test_install_refreshes_existing;
          Alcotest.test_case "flush_range precision" `Quick
            test_flush_range_precision;
          Alcotest.test_case "flush_range wide" `Quick test_flush_range_wide;
        ] );
      ( "ept caches",
        [
          Alcotest.test_case "walk-cache invalidation" `Quick
            test_walk_cache_invalidation;
          Alcotest.test_case "covers-memo invalidation" `Quick
            test_covers_memo_invalidation;
          prop_cached_equals_uncached;
        ] );
      ( "charge memo",
        [
          Alcotest.test_case "identical charges" `Quick
            test_charge_memo_identical;
          Alcotest.test_case "invalidation on pressure" `Quick
            test_charge_memo_invalidation;
        ] );
      ( "zero-alloc hot path",
        [
          Alcotest.test_case "tlb lookup" `Quick test_tlb_lookup_zero_alloc;
          Alcotest.test_case "tlb lookup, obs on" `Quick
            test_tlb_lookup_zero_alloc_obs_on;
          Alcotest.test_case "ept translate" `Quick
            test_ept_translate_zero_alloc;
          Alcotest.test_case "ept translate, obs on" `Quick
            test_ept_translate_zero_alloc_obs_on;
          Alcotest.test_case "bulk charges" `Quick test_charge_zero_alloc;
          Alcotest.test_case "bulk charges, obs on" `Quick
            test_charge_zero_alloc_obs_on;
          Alcotest.test_case "fleet shards, domains 1/2/7" `Quick
            test_fleet_sharded_zero_alloc;
        ] );
      ( "warm-path regressions",
        [
          Alcotest.test_case "generation stable under reads" `Quick
            test_generation_stable_under_reads;
          Alcotest.test_case "warm <= uncached walk" `Slow
            test_warm_not_slower_than_uncached;
        ] );
    ]
