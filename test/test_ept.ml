(* EPT radix-table tests: mapping, coalescing, splitting, violations,
   and a property check against the region-set reference. *)

open Covirt_hw

let k4 = Addr.page_size_4k
let m2 = Addr.page_size_2m
let g1 = Addr.page_size_1g

let region ~base ~len = Region.make ~base ~len

let test_empty_translate () =
  let ept = Ept.create () in
  match Ept.translate ept 0x1000 ~access:`Read with
  | Error v ->
      Alcotest.(check bool) "not mapped" true (v.Ept.reason = `Not_mapped)
  | Ok _ -> Alcotest.fail "empty EPT translated"

let test_map_4k () =
  let ept = Ept.create () in
  Ept.map_region ept (region ~base:0x1000 ~len:k4);
  (match Ept.translate ept 0x1800 ~access:`Write with
  | Ok ps -> Alcotest.(check bool) "4K leaf" true (ps = Addr.Page_4k)
  | Error _ -> Alcotest.fail "mapped page failed");
  let n4k, n2m, n1g = Ept.leaf_counts ept in
  Alcotest.(check (triple int int int)) "one 4K leaf" (1, 0, 0) (n4k, n2m, n1g)

let test_coalescing_2m () =
  let ept = Ept.create () in
  Ept.map_region ept (region ~base:m2 ~len:(2 * m2));
  let n4k, n2m, _ = Ept.leaf_counts ept in
  Alcotest.(check int) "no 4K leaves" 0 n4k;
  Alcotest.(check int) "two 2M leaves" 2 n2m

let test_coalescing_1g () =
  let ept = Ept.create () in
  Ept.map_region ept (region ~base:g1 ~len:(2 * g1));
  let n4k, n2m, n1g = Ept.leaf_counts ept in
  Alcotest.(check (triple int int int)) "two 1G leaves" (0, 0, 2)
    (n4k, n2m, n1g)

let test_coalescing_mixed () =
  (* 4K-aligned base forces small pages until alignment improves. *)
  let ept = Ept.create () in
  let base = m2 - (4 * k4) in
  Ept.map_region ept (region ~base ~len:(m2 + (4 * k4)));
  let n4k, n2m, _ = Ept.leaf_counts ept in
  Alcotest.(check int) "4 head 4K pages" 4 n4k;
  Alcotest.(check int) "then one 2M page" 1 n2m

let test_max_page_cap () =
  let ept = Ept.create ~max_page:Addr.Page_4k () in
  Ept.map_region ept (region ~base:0 ~len:m2);
  let n4k, n2m, n1g = Ept.leaf_counts ept in
  Alcotest.(check (triple int int int)) "all 4K" (512, 0, 0) (n4k, n2m, n1g)

let test_unmap_whole_leaf_no_split () =
  let ept = Ept.create () in
  Ept.map_region ept (region ~base:0 ~len:(2 * m2));
  let writes_before = Ept.entry_writes ept in
  Ept.unmap_region ept (region ~base:0 ~len:m2);
  let writes = Ept.entry_writes ept - writes_before in
  Alcotest.(check int) "single entry write" 1 writes;
  Alcotest.(check bool) "first unmapped" true
    (Result.is_error (Ept.translate ept 0x1000 ~access:`Read));
  Alcotest.(check bool) "second still mapped" true
    (Result.is_ok (Ept.translate ept (m2 + 1) ~access:`Read))

let test_partial_unmap_splits () =
  let ept = Ept.create () in
  Ept.map_region ept (region ~base:0 ~len:m2);
  (* unmap one 4K page in the middle: the 2M leaf must split *)
  Ept.unmap_region ept (region ~base:(16 * k4) ~len:k4);
  Alcotest.(check bool) "hole faults" true
    (Result.is_error (Ept.translate ept (16 * k4) ~access:`Read));
  Alcotest.(check bool) "before hole ok" true
    (Result.is_ok (Ept.translate ept (15 * k4) ~access:`Read));
  Alcotest.(check bool) "after hole ok" true
    (Result.is_ok (Ept.translate ept (17 * k4) ~access:`Read));
  let n4k, n2m, _ = Ept.leaf_counts ept in
  Alcotest.(check int) "split into 4K" 511 n4k;
  Alcotest.(check int) "2M leaf gone" 0 n2m

let test_partial_unmap_1g_double_split () =
  let ept = Ept.create () in
  Ept.map_region ept (region ~base:g1 ~len:g1);
  Ept.unmap_region ept (region ~base:(g1 + (3 * k4)) ~len:k4);
  Alcotest.(check bool) "hole faults" true
    (Result.is_error (Ept.translate ept (g1 + (3 * k4)) ~access:`Read));
  Alcotest.(check bool) "rest of 1G ok" true
    (Result.is_ok (Ept.translate ept (g1 + (512 * m2) - k4) ~access:`Read));
  let n4k, n2m, n1g = Ept.leaf_counts ept in
  Alcotest.(check int) "1G gone" 0 n1g;
  Alcotest.(check int) "511 sibling 2M" 511 n2m;
  Alcotest.(check int) "511 sibling 4K" 511 n4k

let test_permissions () =
  let ept = Ept.create () in
  Ept.map_region ept ~perms:Ept.ro (region ~base:0 ~len:k4);
  Alcotest.(check bool) "read ok" true
    (Result.is_ok (Ept.translate ept 0 ~access:`Read));
  (match Ept.translate ept 0 ~access:`Write with
  | Error v -> Alcotest.(check bool) "perm denied" true (v.Ept.reason = `Perm_denied)
  | Ok _ -> Alcotest.fail "write allowed on ro mapping")

let test_remap_updates_perms () =
  let ept = Ept.create () in
  Ept.map_region ept ~perms:Ept.ro (region ~base:0 ~len:m2);
  Ept.map_region ept ~perms:Ept.rwx (region ~base:0 ~len:m2);
  Alcotest.(check bool) "write ok after remap" true
    (Result.is_ok (Ept.translate ept 0x100 ~access:`Write))

let test_covers () =
  let ept = Ept.create () in
  Ept.map_region ept (region ~base:0 ~len:m2);
  Ept.map_region ept (region ~base:m2 ~len:m2);
  Alcotest.(check bool) "covers across leaves" true
    (Ept.covers ept ~base:(m2 - k4) ~len:(2 * k4));
  Alcotest.(check bool) "beyond end" false
    (Ept.covers ept ~base:m2 ~len:(m2 + 1))

let test_unaligned_rejected () =
  let ept = Ept.create () in
  Alcotest.check_raises "unaligned" (Invalid_argument "Ept.map_region: unaligned")
    (fun () -> Ept.map_region ept (Region.make ~base:123 ~len:k4))

(* Property: after a random sequence of page-aligned map/unmap ops, the
   radix table agrees with the Region.Set index on every probe, and the
   leaf footprint accounts for exactly the mapped bytes. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 20)
      (triple (oneofl [ `Map; `Unmap ]) (int_range 0 256) (int_range 1 64)))

let prop_matches_index_with ~max_page name =
  Covirt_test_util.Helpers.qtest ~count:60
    (Printf.sprintf "radix agrees with region index (%s)" name)
    gen_ops
    (fun ops ->
      let ept = Ept.create ~max_page () in
      List.iter
        (fun (op, page, pages) ->
          let r = region ~base:(page * k4) ~len:(pages * k4) in
          match op with
          | `Map -> Ept.map_region ept r
          | `Unmap -> Ept.unmap_region ept r)
        ops;
      let index = Ept.regions ept in
      List.for_all
        (fun page ->
          let addr = page * k4 in
          Region.Set.mem index addr
          = Result.is_ok (Ept.translate ept addr ~access:`Read))
        (List.init 330 Fun.id))

let prop_matches_index =
  Covirt_test_util.Helpers.qtest ~count:100 "radix agrees with region index"
    gen_ops
    (fun ops ->
      let ept = Ept.create () in
      List.iter
        (fun (op, page, pages) ->
          let r = region ~base:(page * k4) ~len:(pages * k4) in
          match op with
          | `Map -> Ept.map_region ept r
          | `Unmap -> Ept.unmap_region ept r)
        ops;
      let index = Ept.regions ept in
      let agree =
        List.for_all
          (fun page ->
            let addr = page * k4 in
            Region.Set.mem index addr
            = Result.is_ok (Ept.translate ept addr ~access:`Read))
          (List.init 330 Fun.id)
      in
      let n4k, n2m, n1g = Ept.leaf_counts ept in
      let leaf_bytes = (n4k * k4) + (n2m * m2) + (n1g * g1) in
      agree && leaf_bytes = Region.Set.total_bytes index)

let () =
  Alcotest.run "ept"
    [
      ( "mapping",
        [
          Alcotest.test_case "empty translate" `Quick test_empty_translate;
          Alcotest.test_case "map 4K" `Quick test_map_4k;
          Alcotest.test_case "coalesce 2M" `Quick test_coalescing_2m;
          Alcotest.test_case "coalesce 1G" `Quick test_coalescing_1g;
          Alcotest.test_case "mixed alignment" `Quick test_coalescing_mixed;
          Alcotest.test_case "max-page cap" `Quick test_max_page_cap;
          Alcotest.test_case "unaligned rejected" `Quick test_unaligned_rejected;
        ] );
      ( "unmapping",
        [
          Alcotest.test_case "whole leaf, no split" `Quick
            test_unmap_whole_leaf_no_split;
          Alcotest.test_case "partial unmap splits 2M" `Quick
            test_partial_unmap_splits;
          Alcotest.test_case "partial unmap splits 1G twice" `Quick
            test_partial_unmap_1g_double_split;
        ] );
      ( "permissions",
        [
          Alcotest.test_case "ro enforced" `Quick test_permissions;
          Alcotest.test_case "remap updates" `Quick test_remap_updates_perms;
        ] );
      ( "queries",
        [
          Alcotest.test_case "covers" `Quick test_covers;
          prop_matches_index;
          prop_matches_index_with ~max_page:Addr.Page_4k "4K cap";
          prop_matches_index_with ~max_page:Addr.Page_2m "2M cap";
        ] );
    ]
