(* Harness tests: each figure runner reproduces the paper's qualitative
   result (quick problem sizes; the full sizes run in bench/main.exe). *)

open Covirt_harness

let test_table1_contents () =
  Alcotest.(check int) "six benchmarks" 6 (List.length Experiments.table1);
  Alcotest.(check bool) "lammps date" true
    (List.exists (fun (n, v, _) -> n = "LAMMPS" && v = "3 Mar 2020")
       Experiments.table1)

let test_layouts () =
  Alcotest.(check int) "four layouts" 4 (List.length Experiments.scaling_layouts);
  List.iter
    (fun l ->
      let mem =
        List.fold_left (fun acc (_, b) -> acc + b) 0 l.Experiments.mem
      in
      Alcotest.(check int)
        (l.Experiments.layout_name ^ " memory fixed at 14GB")
        Experiments.enclave_mem_bytes mem)
    Experiments.scaling_layouts;
  Alcotest.(check int) "8-core layout" 8
    (List.length Experiments.layout_8x2.Experiments.cores)

let test_fig3_profiles_similar () =
  let rows = Fig3.run ~quick:true () in
  Alcotest.(check int) "five configs" 5 (List.length rows);
  let counts = List.map (fun r -> r.Fig3.detour_count) rows in
  (* the noise sources are identical in every configuration *)
  List.iter
    (fun c -> Alcotest.(check int) "same detour count" (List.hd counts) c)
    counts;
  (* noise fraction stays tiny everywhere (an LWK property) *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "noise < 0.01%" true (r.Fig3.noise_fraction < 1e-4))
    rows

let test_fig4_no_overhead () =
  let points = Fig4.run ~quick:true () in
  Alcotest.(check bool) "sizes present" true (List.length points >= 6);
  List.iter
    (fun p ->
      Alcotest.(check bool) "attach overhead < 2%" true
        (Float.abs p.Fig4.overhead < 0.02))
    points;
  (* latency grows with size (page-list dominated) *)
  let lat = List.map (fun p -> p.Fig4.native_us) points in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "latency monotone in size" true (monotone lat)

let test_fig5_shapes () =
  let rows = Fig5.run ~quick:false () in
  let find name = List.find (fun r -> r.Fig5.config = name) rows in
  (* STREAM: all configurations within noise of native *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Fig5.config ^ " stream flat")
        true
        (Float.abs r.Fig5.stream_overhead < 0.005))
    rows;
  (* GUPS: mem ~1.8%, mem+ipi worst ~3.1% *)
  let mem = find "mem" and mem_ipi = find "mem+ipi" and none = find "none" in
  Alcotest.(check bool) "mem in [1%,2.5%]" true
    (mem.Fig5.gups_overhead > 0.01 && mem.Fig5.gups_overhead < 0.025);
  Alcotest.(check bool) "mem+ipi in [2.5%,4%]" true
    (mem_ipi.Fig5.gups_overhead > 0.025 && mem_ipi.Fig5.gups_overhead < 0.04);
  Alcotest.(check bool) "mem+ipi is worst" true
    (List.for_all (fun r -> r.Fig5.gups_overhead <= mem_ipi.Fig5.gups_overhead) rows);
  Alcotest.(check bool) "none is small" true (none.Fig5.gups_overhead < 0.01)

let test_fig6_minife_flat () =
  let rows = Fig6.run ~quick:true () in
  Alcotest.(check int) "four layouts" 4 (List.length rows);
  List.iter
    (fun row ->
      List.iter
        (fun cell ->
          Alcotest.(check bool)
            (row.Fig6.layout ^ "/" ^ cell.Fig6.config ^ " flat")
            true
            (Float.abs cell.Fig6.overhead < 0.005))
        row.Fig6.cells)
    rows;
  (* scaling: 8 cores beat 1 core *)
  let gflops_of layout =
    let row = List.find (fun r -> r.Fig6.layout = layout) rows in
    (List.find (fun c -> c.Fig6.config = "native") row.Fig6.cells).Fig6.gflops
  in
  Alcotest.(check bool) "scales with cores" true
    (gflops_of "8 cores / 2 zones" > gflops_of "1 core / 1 zone")

let test_fig7_hpcg_bounded () =
  let rows = Fig7.run ~quick:true () in
  let worst = Fig7.worst_overhead rows in
  Alcotest.(check bool) "worst in [0.5%, 2%]" true (worst > 0.005 && worst < 0.02);
  (* overhead present in every covirt config (the baseline-penalty
     observation) but never large *)
  List.iter
    (fun row ->
      List.iter
        (fun cell ->
          Alcotest.(check bool) "bounded" true (cell.Fig7.overhead < 0.02))
        row.Fig7.cells)
    rows

let test_fig8_chute_sensitivity () =
  let rows = Fig8.run ~quick:true () in
  Alcotest.(check int) "four benches" 4 (List.length rows);
  Alcotest.(check bool) "chute most sensitive" true
    (Fig8.chute_is_most_sensitive rows);
  (* native and no-feature are fastest for chute *)
  let chute = List.find (fun r -> r.Fig8.bench = "chute") rows in
  let time name =
    (List.find (fun c -> c.Fig8.config = name) chute.Fig8.cells)
      .Fig8.loop_seconds
  in
  Alcotest.(check bool) "native fastest" true (time "native" <= time "mem+ipi");
  Alcotest.(check bool) "none second" true (time "none" <= time "mem+ipi");
  (* lj/eam/chain are flat *)
  List.iter
    (fun row ->
      if row.Fig8.bench <> "chute" then
        List.iter
          (fun cell ->
            Alcotest.(check bool)
              (row.Fig8.bench ^ " flat")
              true (cell.Fig8.overhead < 0.005))
          row.Fig8.cells)
    rows

let test_scale_flat () =
  let rows = Scale.run ~max_enclaves:3 ~quick:true () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "per-enclave cost independent of neighbours" true
        (r.Scale.worst_vs_solo < 0.005);
      (* controller footprint grows linearly: leaves per enclave constant *)
      Alcotest.(check int) "EPT leaves linear"
        (r.Scale.enclaves * r.Scale.total_ept_leaves
        / max 1 r.Scale.enclaves)
        r.Scale.total_ept_leaves)
    rows

let test_campaign_ordering () =
  let rows = Campaign.run ~trials:30 () in
  let rate name =
    Campaign.containment_rate
      (List.find (fun r -> r.Campaign.config = name) rows)
  in
  (* protection strictly improves containment, and the full config
     never loses the node or a neighbour *)
  Alcotest.(check bool) "native worst" true (rate "native" < rate "mem");
  Alcotest.(check bool) "mem+ipi beats mem" true
    (rate "mem+ipi" >= rate "mem");
  let full = List.find (fun r -> r.Campaign.config = "full(+msr+io)") rows in
  Alcotest.(check int) "full: node never down" 0 full.Campaign.node_down;
  Alcotest.(check int) "full: no collateral" 0 full.Campaign.collateral;
  let native = List.find (fun r -> r.Campaign.config = "native") rows in
  Alcotest.(check bool) "native loses nodes" true (native.Campaign.node_down > 0)

let test_isolation_shape () =
  let rows = Isolation.run ~quick:true () in
  let find name = List.find (fun r -> r.Isolation.scenario = name) rows in
  let quiet = find "quiet node" in
  let cross = find "pressure in the other zone" in
  let local = find "pressure in the enclave's zone" in
  Alcotest.(check (float 1e-9)) "cross-zone pressure free" 0.0
    cross.Isolation.interference_native;
  Alcotest.(check bool) "local pressure hurts" true
    (local.Isolation.interference_native > 0.3);
  (* protection neither causes nor cures interference *)
  Alcotest.(check (float 1e-3)) "covirt sees identical interference"
    local.Isolation.interference_native local.Isolation.interference_covirt;
  Alcotest.(check (float 1e-9)) "quiet baseline" 0.0
    quiet.Isolation.interference_native

let test_determinism_across_runs () =
  let a = Fig5.run ~quick:true () and b = Fig5.run ~quick:true () in
  List.iter2
    (fun ra rb ->
      Alcotest.(check (float 0.0)) "identical gups" ra.Fig5.gups rb.Fig5.gups)
    a b

let () =
  Alcotest.run "harness"
    [
      ( "experiments",
        [
          Alcotest.test_case "table1" `Quick test_table1_contents;
          Alcotest.test_case "layouts" `Quick test_layouts;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig3 noise similar" `Quick test_fig3_profiles_similar;
          Alcotest.test_case "fig4 attach no overhead" `Quick test_fig4_no_overhead;
          Alcotest.test_case "fig5 shapes" `Slow test_fig5_shapes;
          Alcotest.test_case "fig6 minife flat" `Quick test_fig6_minife_flat;
          Alcotest.test_case "fig7 hpcg bounded" `Quick test_fig7_hpcg_bounded;
          Alcotest.test_case "fig8 chute sensitive" `Quick test_fig8_chute_sensitivity;
          Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
          Alcotest.test_case "scale flat" `Quick test_scale_flat;
          Alcotest.test_case "campaign ordering" `Quick test_campaign_ordering;
          Alcotest.test_case "isolation shape" `Quick test_isolation_shape;
        ] );
    ]
