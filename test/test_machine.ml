(* Machine access-path tests: translation, the failure model, VM exits
   with stub handlers, IPI delivery in all three incoming modes, timer
   costs.  These drive the machine directly with hand-built VMCS
   structures; the full Covirt policy is tested in test_covirt and
   test_faults. *)

open Covirt_hw
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let machine () = Helpers.small_machine ()

(* Give a core to an enclave owner and optionally enter guest mode
   with the given controls and handler. *)
let enter_guest m ~core ~enclave ?ept ?(vapic = Vmcs.Vapic_off) ?msr_bitmap
    ?io_bitmap handler =
  let cpu = Machine.cpu m core in
  cpu.Cpu.owner <- Owner.Enclave enclave;
  let vmcs =
    Vmcs.create ~vcpu:core ~enclave
      ~guest:{ Vmcs.entry_rip = 0; boot_params_gpa = 0; long_mode = true }
      ~controls:{ Vmcs.ept; msr_bitmap; io_bitmap; vapic }
  in
  vmcs.Vmcs.exit_handler <- Some handler;
  Vmx.vmlaunch ~model:m.Machine.model cpu vmcs;
  (cpu, vmcs)

let enclave_region m ~enclave ~zone ~len =
  match Phys_mem.alloc m.Machine.mem ~owner:(Owner.Enclave enclave) ~zone ~len with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_host_store_unchecked () =
  let m = machine () in
  let cpu = Machine.cpu m 0 in
  (* Host stores to its own reserved memory are fine. *)
  Machine.store m cpu 0x2000;
  Alcotest.(check bool) "time advanced" true (Cpu.rdtsc cpu > 0)

let test_native_enclave_wild_write_panics_host () =
  let m = machine () in
  let cpu = Machine.cpu m 1 in
  cpu.Cpu.owner <- Owner.Enclave 1;
  (* 0x2000 is host-kernel reserved memory: native wild write = panic *)
  Helpers.expect_panic "host write" (fun () -> Machine.store m cpu 0x2000);
  Alcotest.(check bool) "panicked flag" true (Machine.panicked m <> None)

let test_native_cross_enclave_write_corrupts () =
  let m = machine () in
  let r2 = enclave_region m ~enclave:2 ~zone:0 ~len:(16 * mib) in
  let cpu = Machine.cpu m 1 in
  cpu.Cpu.owner <- Owner.Enclave 1;
  Machine.store m cpu r2.Region.base;
  (match Machine.is_corrupted m ~enclave:2 with
  | Some _ -> ()
  | None -> Alcotest.fail "victim not marked corrupted");
  Alcotest.(check bool) "attacker unmarked" true
    (Machine.is_corrupted m ~enclave:1 = None)

let test_guest_ept_violation_exits () =
  let m = machine () in
  let exits = ref [] in
  let cpu, vmcs =
    enter_guest m ~core:1 ~enclave:1 ~ept:(Ept.create ())
      (fun reason ->
        exits := reason :: !exits;
        Vmcs.Kill { reason = "violation" })
  in
  Helpers.expect_crash "ept violation" (fun () -> Machine.store m cpu 0x2000);
  Alcotest.(check int) "one exit" 1 (List.length !exits);
  Alcotest.(check int) "stat counted" 1 vmcs.Vmcs.stats.Vmcs.exits_ept;
  Alcotest.(check bool) "core offline" true (not cpu.Cpu.online);
  (* the wild write never reached memory: no panic, no corruption *)
  Alcotest.(check bool) "no panic" true (Machine.panicked m = None)

let test_guest_ept_mapped_access_ok () =
  let m = machine () in
  let r = enclave_region m ~enclave:1 ~zone:0 ~len:(16 * mib) in
  let ept = Ept.create () in
  Ept.map_region ept r;
  let cpu, vmcs =
    enter_guest m ~core:1 ~enclave:1 ~ept (fun _ -> Vmcs.Kill { reason = "x" })
  in
  Machine.store m cpu r.Region.base;
  Machine.load m cpu (r.Region.base + 8);
  Alcotest.(check int) "no exits" 0 vmcs.Vmcs.stats.Vmcs.exits_total

let test_stale_tlb_window () =
  (* The dangerous window Covirt's flush protocol closes: translate
     once (TLB fill), unmap the EPT, access again without flushing —
     the stale entry still translates.  After a flush, it faults. *)
  let m = machine () in
  let r = enclave_region m ~enclave:1 ~zone:0 ~len:(16 * mib) in
  let ept = Ept.create () in
  Ept.map_region ept r;
  let cpu, _ =
    enter_guest m ~core:1 ~enclave:1 ~ept (fun _ -> Vmcs.Kill { reason = "v" })
  in
  Machine.store m cpu r.Region.base;
  Ept.unmap_region ept r;
  (* stale entry: the access still goes through *)
  Machine.store m cpu r.Region.base;
  Alcotest.(check bool) "still online (stale window)" true cpu.Cpu.online;
  Tlb.flush_range cpu.Cpu.tlb r;
  Helpers.expect_crash "after flush faults" (fun () ->
      Machine.store m cpu r.Region.base)

let test_check_range_bulk () =
  let m = machine () in
  let r = enclave_region m ~enclave:1 ~zone:0 ~len:(16 * mib) in
  let ept = Ept.create () in
  Ept.map_region ept r;
  let cpu, _ =
    enter_guest m ~core:1 ~enclave:1 ~ept (fun _ -> Vmcs.Kill { reason = "v" })
  in
  Machine.check_range m cpu ~base:r.Region.base ~len:r.Region.len ~access:`Write;
  Helpers.expect_crash "uncovered range" (fun () ->
      Machine.check_range m cpu ~base:r.Region.base ~len:(r.Region.len + 4096)
        ~access:`Read)

let test_msr_trap_and_native () =
  let m = machine () in
  (* native enclave writing a sensitive MSR panics the node *)
  let cpu1 = Machine.cpu m 1 in
  cpu1.Cpu.owner <- Owner.Enclave 1;
  Helpers.expect_panic "native smm write" (fun () ->
      Machine.wrmsr m cpu1 Msr.ia32_smm_monitor_ctl 1L);
  (* guest with bitmap: trapped, handler decides *)
  let m2 = machine () in
  let trapped = ref 0 in
  let cpu, _ =
    enter_guest m2 ~core:1 ~enclave:1
      ~msr_bitmap:(Msr.Bitmap.default_sensitive ())
      (fun reason ->
        match reason with
        | Vmcs.Msr_access _ ->
            incr trapped;
            Vmcs.Skip
        | _ -> Vmcs.Resume)
  in
  Machine.wrmsr m2 cpu Msr.ia32_smm_monitor_ctl 1L;
  Alcotest.(check int) "trapped" 1 !trapped;
  Alcotest.(check int64) "write suppressed" 0L
    (Msr.read m2.Machine.msrs Msr.ia32_smm_monitor_ctl);
  (* unprotected MSR does not trap *)
  Machine.wrmsr m2 cpu 0x345 7L;
  Alcotest.(check int) "no further traps" 1 !trapped

let test_io_trap_and_native_reset () =
  let m = machine () in
  let cpu1 = Machine.cpu m 1 in
  cpu1.Cpu.owner <- Owner.Enclave 1;
  Helpers.expect_panic "native reset" (fun () ->
      Machine.outb m cpu1 Io_port.reset_port 0x6);
  let m2 = machine () in
  let trapped = ref 0 in
  let cpu, _ =
    enter_guest m2 ~core:1 ~enclave:1
      ~io_bitmap:(Io_port.Bitmap.default_sensitive ())
      (fun _ ->
        incr trapped;
        Vmcs.Skip)
  in
  Machine.outb m2 cpu Io_port.reset_port 0x6;
  Alcotest.(check int) "trapped" 1 !trapped;
  Alcotest.(check bool) "no panic" true (Machine.panicked m2 = None)

let test_emulated_instructions () =
  let m = machine () in
  let emuls = ref 0 in
  let cpu, vmcs =
    enter_guest m ~core:1 ~enclave:1 (fun reason ->
        match reason with
        | Vmcs.Cpuid | Vmcs.Xsetbv | Vmcs.Hlt ->
            incr emuls;
            Vmcs.Resume
        | _ -> Vmcs.Resume)
  in
  Machine.cpuid m cpu;
  Machine.xsetbv m cpu;
  Machine.hlt m cpu;
  Alcotest.(check int) "three emulations" 3 !emuls;
  Alcotest.(check int) "emul stats" 2 vmcs.Vmcs.stats.Vmcs.exits_emul;
  Alcotest.(check int) "hlt stat" 1 vmcs.Vmcs.stats.Vmcs.exits_hlt

let test_abort_paths () =
  let m = machine () in
  let cpu1 = Machine.cpu m 1 in
  cpu1.Cpu.owner <- Owner.Enclave 1;
  Helpers.expect_panic "native double fault" (fun () ->
      Machine.raise_abort m cpu1 ~what:"double fault");
  let m2 = machine () in
  let cpu, _ =
    enter_guest m2 ~core:1 ~enclave:1 (fun reason ->
        match reason with
        | Vmcs.Abort _ -> Vmcs.Kill { reason = "abort" }
        | _ -> Vmcs.Resume)
  in
  Helpers.expect_crash "guest abort contained" (fun () ->
      Machine.raise_abort m2 cpu ~what:"double fault")

(* --- IPI delivery --- *)

let test_ipi_native_delivery () =
  let m = machine () in
  let received = ref [] in
  let dest = Machine.cpu m 2 in
  dest.Cpu.isr <- Some (fun _ v -> received := v :: !received);
  let src = Machine.cpu m 1 in
  Machine.send_ipi m ~from:src ~dest:2 ~vector:0x40 ~kind:Apic.Fixed;
  Alcotest.(check (list int)) "delivered" [ 0x40 ] !received;
  Alcotest.(check int) "sender counted" 1 (Apic.ipis_sent src.Cpu.apic)

let test_ipi_sender_trap_drop () =
  let m = machine () in
  let cpu, vmcs =
    enter_guest m ~core:1 ~enclave:1 ~vapic:Vmcs.Vapic_full (fun reason ->
        match reason with Vmcs.Icr_write _ -> Vmcs.Skip | _ -> Vmcs.Resume)
  in
  let received = ref 0 in
  (Machine.cpu m 2).Cpu.isr <- Some (fun _ _ -> incr received);
  Machine.send_ipi m ~from:cpu ~dest:2 ~vector:0x40 ~kind:Apic.Fixed;
  Alcotest.(check int) "dropped" 0 !received;
  Alcotest.(check int) "icr exit" 1 vmcs.Vmcs.stats.Vmcs.exits_icr

let test_ipi_incoming_vapic_full_exits () =
  let m = machine () in
  let received = ref 0 in
  let dest_cpu, vmcs =
    enter_guest m ~core:2 ~enclave:1 ~vapic:Vmcs.Vapic_full (fun reason ->
        match reason with
        | Vmcs.External_interrupt _ -> Vmcs.Resume
        | _ -> Vmcs.Resume)
  in
  dest_cpu.Cpu.isr <- Some (fun _ _ -> incr received);
  let src = Machine.cpu m 1 in
  src.Cpu.owner <- Owner.Enclave 1;
  Machine.send_ipi m ~from:src ~dest:2 ~vector:0x40 ~kind:Apic.Fixed;
  Alcotest.(check int) "delivered after exit" 1 !received;
  Alcotest.(check int) "interrupt exit" 1 vmcs.Vmcs.stats.Vmcs.exits_interrupt

let test_ipi_incoming_piv_exitless () =
  let m = machine () in
  let received = ref 0 in
  let dest_cpu, vmcs =
    enter_guest m ~core:2 ~enclave:1
      ~vapic:(Vmcs.Vapic_piv { notification_vector = 0xf2 })
      (fun _ -> Vmcs.Resume)
  in
  dest_cpu.Cpu.isr <- Some (fun _ _ -> incr received);
  let src = Machine.cpu m 1 in
  src.Cpu.owner <- Owner.Enclave 1;
  Machine.send_ipi m ~from:src ~dest:2 ~vector:0x40 ~kind:Apic.Fixed;
  Alcotest.(check int) "delivered" 1 !received;
  Alcotest.(check int) "no interrupt exits (exitless PIV)" 0
    vmcs.Vmcs.stats.Vmcs.exits_interrupt

let test_errant_exception_vector_kills_victim () =
  let m = machine () in
  let src = Machine.cpu m 1 in
  src.Cpu.owner <- Owner.Enclave 1;
  let dest = Machine.cpu m 2 in
  dest.Cpu.owner <- Owner.Enclave 2;
  Machine.send_ipi m ~from:src ~dest:2 ~vector:8 ~kind:Apic.Fixed;
  Alcotest.(check bool) "victim corrupted" true
    (Machine.is_corrupted m ~enclave:2 <> None);
  (* and against a host core it panics the node *)
  let m2 = machine () in
  let src2 = Machine.cpu m2 1 in
  src2.Cpu.owner <- Owner.Enclave 1;
  Helpers.expect_panic "host victim" (fun () ->
      Machine.send_ipi m2 ~from:src2 ~dest:0 ~vector:8 ~kind:Apic.Fixed)

let test_errant_init_resets () =
  let m = machine () in
  let src = Machine.cpu m 1 in
  src.Cpu.owner <- Owner.Enclave 1;
  let dest = Machine.cpu m 2 in
  dest.Cpu.owner <- Owner.Enclave 2;
  Machine.send_ipi m ~from:src ~dest:2 ~vector:0 ~kind:Apic.Init;
  Alcotest.(check bool) "victim reset" true
    (Machine.is_corrupted m ~enclave:2 <> None)

let test_nmi_doorbell () =
  let m = machine () in
  let nmis = ref 0 in
  let cpu, vmcs =
    enter_guest m ~core:1 ~enclave:1 (fun reason ->
        match reason with
        | Vmcs.Nmi_exit ->
            incr nmis;
            Vmcs.Skip
        | _ -> Vmcs.Resume)
  in
  ignore cpu;
  Machine.post_host_nmi m ~dest:1;
  Alcotest.(check int) "nmi exit" 1 !nmis;
  Alcotest.(check int) "stat" 1 vmcs.Vmcs.stats.Vmcs.exits_nmi;
  (* host-mode NMI goes to the host handler *)
  let host_nmis = ref 0 in
  (Machine.cpu m 0).Cpu.nmi_handler <- Some (fun _ -> incr host_nmis);
  Machine.post_host_nmi m ~dest:0;
  Alcotest.(check int) "host nmi" 1 !host_nmis

let test_timer_costs_by_mode () =
  let m = machine () in
  let host_cost = Machine.timer_tick_cost m (Machine.cpu m 0) in
  let _, _ = enter_guest m ~core:1 ~enclave:1 (fun _ -> Vmcs.Resume) in
  let off_cost = Machine.timer_tick_cost m (Machine.cpu m 1) in
  let m2 = machine () in
  let _, _ =
    enter_guest m2 ~core:1 ~enclave:1 ~vapic:Vmcs.Vapic_full (fun _ ->
        Vmcs.Resume)
  in
  let full_cost = Machine.timer_tick_cost m2 (Machine.cpu m2 1) in
  Alcotest.(check int) "vapic-off same as native" host_cost off_cost;
  Alcotest.(check bool) "vapic-full pays the exit" true (full_cost > host_cost)

let test_bulk_charging_monotone () =
  let m = machine () in
  let cpu = Machine.cpu m 0 in
  let t0 = Cpu.rdtsc cpu in
  Machine.charge_stream m cpu ~base:(256 * mib) ~bytes:mib ~sharers:1
    ~page_size:Addr.Page_2m;
  let t1 = Cpu.rdtsc cpu in
  Machine.charge_stream m cpu ~base:(256 * mib) ~bytes:(4 * mib) ~sharers:1
    ~page_size:Addr.Page_2m;
  let t2 = Cpu.rdtsc cpu in
  Alcotest.(check bool) "4x bytes costs more" true (t2 - t1 > t1 - t0);
  Machine.charge_random m cpu ~ops:1000 ~base:(256 * mib)
    ~working_set:(256 * mib) ~sharers:1 ~page_size:Addr.Page_2m;
  let t3 = Cpu.rdtsc cpu in
  Machine.charge_flops m cpu 1000;
  Alcotest.(check bool) "random charged" true (t3 > t2);
  Alcotest.(check bool) "flops charged" true (Cpu.rdtsc cpu > t3)

let test_kernel_page_fault_distinct_from_ept () =
  (* A kernel with precise page tables faults on unmapped addresses in
     ITS OWN tables — a different event from an EPT violation, and one
     Covirt never sees. *)
  let m = machine () in
  let r = enclave_region m ~enclave:1 ~zone:0 ~len:(16 * mib) in
  let pt = Guest_pt.create () in
  Guest_pt.map_region pt r;
  let ept = Ept.create () in
  Ept.map_region ept r;
  let exits = ref 0 in
  let cpu, _ =
    enter_guest m ~core:1 ~enclave:1 ~ept (fun _ ->
        incr exits;
        Vmcs.Kill { reason = "ept" })
  in
  cpu.Cpu.guest_pt <- Some pt;
  (* mapped in both: fine *)
  Machine.store m cpu r.Region.base;
  (* mapped in neither: the KERNEL's fault fires first, no exit *)
  (match Machine.store m cpu 0x9000 with
  | exception Machine.Guest_page_fault { gva; _ } ->
      Alcotest.(check int) "pf address" 0x9000 gva
  | () -> Alcotest.fail "expected kernel page fault");
  Alcotest.(check int) "no hypervisor involvement" 0 !exits;
  (* kernel maps it (the bug!), EPT does not: now it IS an EPT exit *)
  Guest_pt.map_region pt
    (Region.make ~base:0x8000 ~len:Addr.page_size_4k);
  Helpers.expect_crash "ept violation" (fun () -> Machine.store m cpu 0x8000);
  Alcotest.(check int) "one exit" 1 !exits

let test_direct_map_translates_everything () =
  let m = machine () in
  let pt =
    Guest_pt.direct_map ~total_mem:(Numa.total_mem m.Machine.topology)
  in
  Alcotest.(check bool) "bottom" true (Guest_pt.maps pt 0);
  Alcotest.(check bool) "top" true
    (Guest_pt.maps pt (Numa.total_mem m.Machine.topology - 1));
  Alcotest.(check bool) "beyond" false
    (Guest_pt.maps pt (Numa.total_mem m.Machine.topology + 4096));
  (* the direct map coalesces into large pages *)
  let n4k, _, n1g = Guest_pt.leaf_counts pt in
  Alcotest.(check int) "no 4K leaves" 0 n4k;
  Alcotest.(check bool) "mostly 1G leaves" true (n1g >= 3)

let test_guest_translation_tax () =
  let m = machine () in
  let r = enclave_region m ~enclave:1 ~zone:0 ~len:(512 * mib) in
  let ept = Ept.create () in
  Ept.map_region ept r;
  let host = Machine.cpu m 0 in
  let extra_host = Machine.translation_extra_per_miss m host ~probe:r.Region.base in
  Alcotest.(check (float 0.0)) "host pays nothing" 0.0 extra_host;
  let cpu, _ = enter_guest m ~core:1 ~enclave:1 ~ept (fun _ -> Vmcs.Resume) in
  let extra_ept = Machine.translation_extra_per_miss m cpu ~probe:r.Region.base in
  Alcotest.(check bool) "guest with EPT pays" true (extra_ept > 0.0)

let () =
  Alcotest.run "machine"
    [
      ( "memory",
        [
          Alcotest.test_case "host store unchecked" `Quick test_host_store_unchecked;
          Alcotest.test_case "native wild write panics" `Quick
            test_native_enclave_wild_write_panics_host;
          Alcotest.test_case "native cross-enclave corrupts" `Quick
            test_native_cross_enclave_write_corrupts;
          Alcotest.test_case "guest EPT violation" `Quick
            test_guest_ept_violation_exits;
          Alcotest.test_case "guest mapped access" `Quick
            test_guest_ept_mapped_access_ok;
          Alcotest.test_case "stale TLB window" `Quick test_stale_tlb_window;
          Alcotest.test_case "bulk check_range" `Quick test_check_range_bulk;
        ] );
      ( "instructions",
        [
          Alcotest.test_case "msr" `Quick test_msr_trap_and_native;
          Alcotest.test_case "io" `Quick test_io_trap_and_native_reset;
          Alcotest.test_case "emulated" `Quick test_emulated_instructions;
          Alcotest.test_case "abort" `Quick test_abort_paths;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "native IPI" `Quick test_ipi_native_delivery;
          Alcotest.test_case "sender trap drop" `Quick test_ipi_sender_trap_drop;
          Alcotest.test_case "vapic-full incoming" `Quick
            test_ipi_incoming_vapic_full_exits;
          Alcotest.test_case "PIV exitless" `Quick test_ipi_incoming_piv_exitless;
          Alcotest.test_case "errant exception vector" `Quick
            test_errant_exception_vector_kills_victim;
          Alcotest.test_case "errant INIT" `Quick test_errant_init_resets;
          Alcotest.test_case "NMI doorbell" `Quick test_nmi_doorbell;
          Alcotest.test_case "timer costs by mode" `Quick test_timer_costs_by_mode;
        ] );
      ( "charging",
        [
          Alcotest.test_case "bulk monotone" `Quick test_bulk_charging_monotone;
          Alcotest.test_case "guest tax" `Quick test_guest_translation_tax;
          Alcotest.test_case "kernel PF vs EPT violation" `Quick
            test_kernel_page_fault_distinct_from_ept;
          Alcotest.test_case "direct map" `Quick
            test_direct_map_translates_everything;
        ] );
    ]
