(* Pisces framework tests: enclave lifecycle, control transactions,
   hook ordering, syscall servicing, teardown. *)

open Covirt_hw
open Covirt_pisces
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let framework () =
  let machine = Helpers.small_machine () in
  (machine, Pisces.create machine ~host_core:0)

(* A stub kernel that acks every message and reports ready. *)
let stub_kernel ?(on_msg = fun _ -> ()) () =
  {
    Pisces.kernel_name = "stub";
    boot_core =
      (fun machine enclave cpu ~bsp _params ->
        if bsp then begin
          enclave.Enclave.msg_handler <-
            Some
              (fun msg ->
                on_msg msg;
                match msg with
                | Message.Syscall_reply _ -> ()
                | other ->
                    Ctrl_channel.send_to_host machine ~enclave_cpu:cpu
                      enclave.Enclave.channel
                      (Message.Ack { seq = Message.seq_of_host_msg other }));
          Ctrl_channel.send_to_host machine ~enclave_cpu:cpu
            enclave.Enclave.channel Message.Ready
        end);
  }

let launch ?(cores = [ 1; 2 ]) ?(mem = [ (0, 128 * mib) ]) ?on_msg (m, p) =
  match Pisces.create_enclave p ~name:"e" ~cores ~mem () with
  | Error e -> Alcotest.fail e
  | Ok enclave -> (
      match Pisces.boot p enclave ~kernel:(stub_kernel ?on_msg ()) with
      | Ok () -> enclave
      | Error e -> Alcotest.fail e)
  |> fun enclave ->
  ignore m;
  enclave

let test_create_validation () =
  let _, p = framework () in
  Alcotest.(check bool) "host core rejected" true
    (Result.is_error
       (Pisces.create_enclave p ~name:"x" ~cores:[ 0 ] ~mem:[ (0, mib) ] ()));
  Alcotest.(check bool) "bad core rejected" true
    (Result.is_error
       (Pisces.create_enclave p ~name:"x" ~cores:[ 99 ] ~mem:[ (0, mib) ] ()));
  Alcotest.(check bool) "huge mem rejected" true
    (Result.is_error
       (Pisces.create_enclave p ~name:"x" ~cores:[ 1 ]
          ~mem:[ (0, 1024 * 1024 * mib) ] ()))

let test_core_exclusivity () =
  let mp = framework () in
  let _e1 = launch ~cores:[ 1 ] mp in
  let _, p = mp in
  Alcotest.(check bool) "core already assigned" true
    (Result.is_error
       (Pisces.create_enclave p ~name:"y" ~cores:[ 1 ] ~mem:[ (0, mib) ] ()))

let test_boot_lifecycle () =
  let (machine, p) as mp = framework () in
  let enclave = launch mp in
  Alcotest.(check bool) "running" true (Enclave.is_running enclave);
  (* cores re-owned *)
  Alcotest.(check bool) "core owned" true
    (Owner.equal (Machine.cpu machine 1).Cpu.owner (Owner.Enclave enclave.Enclave.id));
  (* boot params transparent: assigned memory matches *)
  (match enclave.Enclave.boot_params with
  | Some params ->
      Alcotest.(check int) "mem in params" (128 * mib)
        (List.fold_left (fun a r -> a + r.Region.len) 0
           params.Boot_params.assigned_memory)
  | None -> Alcotest.fail "no boot params");
  (* double boot rejected *)
  Alcotest.(check bool) "double boot" true
    (Result.is_error (Pisces.boot p enclave ~kernel:(stub_kernel ())))

let test_add_remove_memory () =
  let (machine, p) as mp = framework () in
  let received = ref [] in
  let enclave = launch ~on_msg:(fun m -> received := m :: !received) mp in
  match Pisces.add_memory p enclave ~zone:1 ~len:(32 * mib) with
  | Error e -> Alcotest.fail e
  | Ok region ->
      Alcotest.(check bool) "tracked" true
        (Region.Set.mem enclave.Enclave.memory region.Region.base);
      Alcotest.(check bool) "kernel told" true
        (List.exists
           (function Message.Add_memory _ -> true | _ -> false)
           !received);
      (match Pisces.remove_memory p enclave region with
      | Error e -> Alcotest.fail e
      | Ok () ->
          Alcotest.(check bool) "untracked" true
            (not (Region.Set.mem enclave.Enclave.memory region.Region.base));
          Alcotest.(check bool) "released to host pool" true
            (Owner.equal
               (Phys_mem.owner_at machine.Machine.mem region.Region.base)
               Owner.Free))

let test_hook_ordering_on_map () =
  (* pre_memory_map must fire before the kernel receives the list. *)
  let _, p = framework () in
  let events = ref [] in
  let hooks = Pisces.hooks p in
  hooks.Hooks.pre_memory_map <- [ (fun _ _ -> events := `Hook :: !events) ];
  let enclave =
    match Pisces.create_enclave p ~name:"e" ~cores:[ 1 ] ~mem:[ (0, 32 * mib) ] () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  (match
     Pisces.boot p enclave
       ~kernel:(stub_kernel ~on_msg:(fun _ -> events := `Kernel :: !events) ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Pisces.add_memory p enclave ~zone:0 ~len:(16 * mib) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "hook strictly before kernel" true
    (match List.rev !events with `Hook :: `Kernel :: _ -> true | _ -> false)

let test_hook_ordering_on_unmap () =
  (* post_memory_unmap must fire after the kernel ack, before release. *)
  let machine, p = framework () in
  let enclave =
    match Pisces.create_enclave p ~name:"e" ~cores:[ 1 ] ~mem:[ (0, 32 * mib) ] () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  (match Pisces.boot p enclave ~kernel:(stub_kernel ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let region =
    match Pisces.add_memory p enclave ~zone:0 ~len:(16 * mib) with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let owner_at_hook = ref Owner.Free in
  (Pisces.hooks p).Hooks.post_memory_unmap <-
    [ (fun _ r -> owner_at_hook := Phys_mem.owner_at machine.Machine.mem r.Region.base) ];
  (match Pisces.remove_memory p enclave region with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* at hook time the frames were still enclave-owned (not yet released) *)
  Alcotest.(check bool) "frames not yet released at hook" true
    (Owner.equal !owner_at_hook (Owner.Enclave enclave.Enclave.id))

let test_shared_mapping_paths () =
  let _, p = framework () in
  let enclave =
    match Pisces.create_enclave p ~name:"e" ~cores:[ 1 ] ~mem:[ (0, 32 * mib) ] () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  (match Pisces.boot p enclave ~kernel:(stub_kernel ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let pages = [ Region.make ~base:(512 * mib) ~len:(4 * mib) ] in
  (match Pisces.map_shared p enclave ~segid:7 ~pages with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "shared tracked" true
    (Region.Set.mem enclave.Enclave.shared (512 * mib));
  (match Pisces.unmap_shared p enclave ~segid:7 ~pages () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "shared removed" true
    (Region.Set.is_empty enclave.Enclave.shared)

let test_vector_grant_revoke () =
  let mp = framework () in
  let _, p = mp in
  let enclave = launch ~cores:[ 1 ] mp in
  (match Pisces.grant_ipi_vector p enclave ~vector:0x41 ~peer_core:3 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair int int))) "granted" [ (0x41, 3) ]
    enclave.Enclave.granted_vectors;
  (match Pisces.revoke_ipi_vector p enclave ~vector:0x41 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair int int))) "revoked" []
    enclave.Enclave.granted_vectors

let test_syscall_service () =
  let (machine, p) as mp = framework () in
  let enclave = launch ~cores:[ 1 ] mp in
  Pisces.set_syscall_handler p (fun ~number ~arg -> number + arg);
  (* the "kernel" sends a request, host services it, reply delivered *)
  let cpu = Machine.cpu machine 1 in
  Ctrl_channel.send_to_host machine ~enclave_cpu:cpu enclave.Enclave.channel
    (Message.Syscall_request { seq = -1; number = 1; arg = 41 });
  let replies = ref [] in
  let old_handler = enclave.Enclave.msg_handler in
  enclave.Enclave.msg_handler <-
    Some
      (fun msg ->
        match msg with
        | Message.Syscall_reply { ret; _ } -> replies := ret :: !replies
        | other -> (match old_handler with Some h -> h other | None -> ()));
  let serviced = Pisces.service_channel p enclave in
  Alcotest.(check int) "one serviced" 1 serviced;
  Alcotest.(check (list int)) "reply value" [ 42 ] !replies

let test_destroy_reclaims () =
  let (machine, p) as mp = framework () in
  let enclave = launch mp in
  let mem_region =
    match Region.Set.to_list enclave.Enclave.memory with
    | r :: _ -> r
    | [] -> Alcotest.fail "no memory"
  in
  let destroyed = ref 0 in
  (Pisces.hooks p).Hooks.on_enclave_destroyed <- [ (fun _ -> incr destroyed) ];
  Pisces.destroy p enclave;
  Alcotest.(check bool) "stopped" true (enclave.Enclave.state = Enclave.Stopped);
  Alcotest.(check int) "hook fired" 1 !destroyed;
  Alcotest.(check bool) "memory freed" true
    (Owner.equal (Phys_mem.owner_at machine.Machine.mem mem_region.Region.base) Owner.Free);
  Alcotest.(check bool) "cores back to host" true
    (Owner.equal (Machine.cpu machine 1).Cpu.owner Owner.Host)

let test_run_guarded () =
  let mp = framework () in
  let _, p = mp in
  let enclave = launch ~cores:[ 1 ] mp in
  (* a crash in guarded code reclaims the enclave *)
  let result =
    Pisces.run_guarded p (fun () ->
        raise
          (Vmx.Vm_terminated
             { cpu_id = 1; enclave = enclave.Enclave.id; reason = "test" }))
  in
  (match result with
  | Error crash ->
      Alcotest.(check int) "enclave id" enclave.Enclave.id crash.Pisces.enclave_id;
      Alcotest.(check string) "reason" "test" crash.Pisces.reason
  | Ok () -> Alcotest.fail "crash not caught");
  Alcotest.(check bool) "state crashed" true
    (match enclave.Enclave.state with Enclave.Crashed _ -> true | _ -> false);
  (* normal results pass through *)
  Alcotest.(check (result int reject)) "ok passes" (Ok 5)
    (Pisces.run_guarded p (fun () -> 5))

let test_channel_ack_bookkeeping () =
  let machine, _ = framework () in
  let chan = Ctrl_channel.create () in
  let cpu = Machine.cpu machine 0 in
  Ctrl_channel.send_to_host machine ~enclave_cpu:cpu chan (Message.Console "x");
  Ctrl_channel.send_to_host machine ~enclave_cpu:cpu chan (Message.Ack { seq = 3 });
  (match Ctrl_channel.take_ack chan ~seq:3 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the unrelated console message is preserved *)
  (match Ctrl_channel.drain_host_side chan with
  | [ Message.Console "x" ] -> ()
  | _ -> Alcotest.fail "console message lost");
  Alcotest.(check bool) "missing ack is an error" true
    (Result.is_error (Ctrl_channel.take_ack chan ~seq:9))

let () =
  Alcotest.run "pisces"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "core exclusivity" `Quick test_core_exclusivity;
          Alcotest.test_case "boot" `Quick test_boot_lifecycle;
          Alcotest.test_case "destroy reclaims" `Quick test_destroy_reclaims;
          Alcotest.test_case "run_guarded" `Quick test_run_guarded;
        ] );
      ( "resources",
        [
          Alcotest.test_case "add/remove memory" `Quick test_add_remove_memory;
          Alcotest.test_case "map hook ordering" `Quick test_hook_ordering_on_map;
          Alcotest.test_case "unmap hook ordering" `Quick
            test_hook_ordering_on_unmap;
          Alcotest.test_case "shared mappings" `Quick test_shared_mapping_paths;
          Alcotest.test_case "vector grant/revoke" `Quick test_vector_grant_revoke;
        ] );
      ( "channel",
        [
          Alcotest.test_case "syscall service" `Quick test_syscall_service;
          Alcotest.test_case "ack bookkeeping" `Quick test_channel_ack_bookkeeping;
        ] );
    ]
