(* Hobbes runtime tests: launches, vector allocation, IPC channels,
   composite applications. *)

open Covirt_pisces
open Covirt_kitten
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let test_launch_wires_everything () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  Alcotest.(check bool) "kernel registered" true
    (Option.is_some (Covirt_hobbes.Hobbes.kernel_of s.Helpers.hobbes s.Helpers.enclave));
  (* host_poke wired: a forwarded syscall completes *)
  let ctx = Helpers.ctx s 1 in
  Alcotest.(check int) "forwarding works" 5
    (Kitten.syscall ctx ~number:Syscall.nr_read ~arg:5)

let test_vector_allocation () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let h = s.Helpers.hobbes in
  (match Covirt_hobbes.Hobbes.alloc_ipi_vector h with
  | Ok v ->
      Alcotest.(check bool) "in app range" true (v >= 0x40 && v <= 0xdf);
      Covirt_hobbes.Hobbes.free_ipi_vector h v
  | Error e -> Alcotest.fail e);
  (* exhaust the space *)
  let rec drain n =
    match Covirt_hobbes.Hobbes.alloc_ipi_vector h with
    | Ok _ -> drain (n + 1)
    | Error _ -> n
  in
  let got = drain 0 in
  Alcotest.(check int) "vector space size" 160 got

let test_grant_pair () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let b_enclave, _ = Helpers.second_enclave s () in
  match
    Covirt_hobbes.Hobbes.grant_vector_pair s.Helpers.hobbes s.Helpers.enclave
      b_enclave
  with
  | Ok (va, vb) ->
      Alcotest.(check bool) "distinct" true (va <> vb);
      Alcotest.(check bool) "a granted" true
        (List.mem_assoc va s.Helpers.enclave.Enclave.granted_vectors);
      Alcotest.(check bool) "b granted" true
        (List.mem_assoc vb b_enclave.Enclave.granted_vectors)
  | Error e -> Alcotest.fail e

let test_ipc_channel () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let cons_enclave, cons_kitten = Helpers.second_enclave s () in
  match
    Covirt_hobbes.Ipc.connect s.Helpers.hobbes
      ~producer:(s.Helpers.enclave, s.Helpers.kitten)
      ~consumer:(cons_enclave, cons_kitten)
      ~name:"test-ring" ~ring_bytes:(64 * 1024)
  with
  | Error e -> Alcotest.fail e
  | Ok channel ->
      let ctx = Helpers.ctx s 1 in
      Covirt_hobbes.Ipc.send channel ctx ~words:16;
      Covirt_hobbes.Ipc.send channel ctx ~words:16;
      Alcotest.(check int) "doorbells received" 2
        (Covirt_hobbes.Ipc.receipts channel)

let test_ipc_under_covirt_whitelist () =
  (* The same channel built under full protection: the granted doorbell
     passes the whitelist, so IPC is unimpeded (zero-overhead IPC). *)
  let s = Helpers.boot_stack ~config:Covirt.Config.full () in
  let cons_enclave, cons_kitten = Helpers.second_enclave s () in
  match
    Covirt_hobbes.Ipc.connect s.Helpers.hobbes
      ~producer:(s.Helpers.enclave, s.Helpers.kitten)
      ~consumer:(cons_enclave, cons_kitten)
      ~name:"prot-ring" ~ring_bytes:(64 * 1024)
  with
  | Error e -> Alcotest.fail e
  | Ok channel ->
      let ctx = Helpers.ctx s 1 in
      Covirt_hobbes.Ipc.send channel ctx ~words:8;
      Alcotest.(check int) "delivered through whitelist" 1
        (Covirt_hobbes.Ipc.receipts channel);
      Alcotest.(check int) "nothing dropped" 0
        (Covirt.dropped_ipis s.Helpers.controller
           ~enclave_id:s.Helpers.enclave.Enclave.id)

let test_app_composition () =
  let s = Helpers.boot_stack ~config:Covirt.Config.full () in
  let sink_enclave, _sink_kitten = Helpers.second_enclave s () in
  let produced = ref 0 in
  let app =
    {
      Covirt_hobbes.App.app_name = "sim-pipeline";
      components =
        [
          Covirt_hobbes.App.component ~name:"producer" s.Helpers.enclave
            (fun ctx channels ->
              List.iter
                (fun ch ->
                  Covirt_hobbes.Ipc.send ch ctx ~words:32;
                  incr produced)
                channels);
          Covirt_hobbes.App.component ~name:"consumer" sink_enclave
            (fun _ctx _channels -> ());
        ];
      wires =
        [
          {
            Covirt_hobbes.App.from_component = "producer";
            to_component = "consumer";
            ring_bytes = 16 * 1024;
          };
        ];
    }
  in
  (match Covirt_hobbes.App.launch s.Helpers.hobbes app with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "producer ran" 1 !produced

let test_app_unknown_component () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let app =
    {
      Covirt_hobbes.App.app_name = "broken";
      components = [];
      wires =
        [
          {
            Covirt_hobbes.App.from_component = "ghost";
            to_component = "ghost2";
            ring_bytes = 4096;
          };
        ];
    }
  in
  Alcotest.(check bool) "launch fails" true
    (Result.is_error (Covirt_hobbes.App.launch s.Helpers.hobbes app));
  ignore mib

let () =
  Alcotest.run "hobbes"
    [
      ( "runtime",
        [
          Alcotest.test_case "launch wiring" `Quick test_launch_wires_everything;
          Alcotest.test_case "vector allocation" `Quick test_vector_allocation;
          Alcotest.test_case "grant pair" `Quick test_grant_pair;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "channel" `Quick test_ipc_channel;
          Alcotest.test_case "under covirt" `Quick test_ipc_under_covirt_whitelist;
        ] );
      ( "apps",
        [
          Alcotest.test_case "composition" `Quick test_app_composition;
          Alcotest.test_case "unknown component" `Quick test_app_unknown_component;
        ] );
    ]
