(* Kitten LWK tests: boot, allocation, believed memory map, syscalls,
   timer accounting, IRQ handling, health. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_test_util

let mib = Covirt_sim.Units.mib

(* Native stack (no Covirt features) unless stated otherwise. *)
let native_stack () = Helpers.boot_stack ~config:Covirt.Config.native ()

let test_boot_state () =
  let s = native_stack () in
  Alcotest.(check bool) "running" true (Enclave.is_running s.Helpers.enclave);
  Alcotest.(check (list int)) "cores" [ 1; 2 ] (Kitten.cores s.Helpers.kitten);
  (* boot charged time on both cores *)
  Alcotest.(check bool) "bsp time" true
    (Cpu.rdtsc (Machine.cpu s.Helpers.machine 1) > 0);
  Alcotest.(check bool) "ap time" true
    (Cpu.rdtsc (Machine.cpu s.Helpers.machine 2) > 0)

let test_boot_transparency () =
  (* The Pisces boot parameters the kernel receives are identical with
     and without Covirt underneath. *)
  let native = native_stack () in
  let covirt = Helpers.boot_stack ~config:Covirt.Config.full () in
  let params s = Kitten.params s.Helpers.kitten in
  let n = params native and c = params covirt in
  Alcotest.(check int) "entry addr" n.Boot_params.entry_addr c.Boot_params.entry_addr;
  Alcotest.(check (list int)) "cores" n.Boot_params.assigned_cores
    c.Boot_params.assigned_cores;
  Alcotest.(check bool) "memory list" true
    (List.equal Region.equal n.Boot_params.assigned_memory
       c.Boot_params.assigned_memory)

let test_kalloc_properties () =
  let s = native_stack () in
  let k = s.Helpers.kitten in
  match (Kitten.kalloc k ~bytes:(4 * mib), Kitten.kalloc k ~bytes:(4 * mib)) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "2M aligned" true
        (Addr.is_aligned a ~size:Addr.page_size_2m);
      Alcotest.(check bool) "disjoint" true (abs (a - b) >= 4 * mib);
      Alcotest.(check bool) "inside believed map" true
        (Memmap.believes_usable (Kitten.memmap k) a);
      Alcotest.(check bool) "exhaustion fails" true
        (Result.is_error (Kitten.kalloc k ~bytes:(1024 * 1024 * mib)))
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_kalloc_near_core () =
  let s = native_stack () in
  let k = s.Helpers.kitten in
  let topo = s.Helpers.machine.Machine.topology in
  (* core 2 is in zone 1; its allocations should come from zone 1 *)
  match Kitten.kalloc ~near_core:2 k ~bytes:(4 * mib) with
  | Ok a -> Alcotest.(check int) "zone 1" 1 (Numa.zone_of_addr topo a)
  | Error e -> Alcotest.fail e

let test_memmap_sync_add_remove () =
  let s = native_stack () in
  let k = s.Helpers.kitten in
  let p = Helpers.pisces s in
  match Pisces.add_memory p s.Helpers.enclave ~zone:1 ~len:(16 * mib) with
  | Error e -> Alcotest.fail e
  | Ok region ->
      Alcotest.(check bool) "kernel believes it" true
        (Memmap.believes_usable (Kitten.memmap k) region.Region.base);
      (match Pisces.remove_memory p s.Helpers.enclave region with
      | Error e -> Alcotest.fail e
      | Ok () ->
          Alcotest.(check bool) "belief revoked" true
            (not (Memmap.believes_usable (Kitten.memmap k) region.Region.base)))

let test_memmap_phantom_injection () =
  let s = native_stack () in
  let k = s.Helpers.kitten in
  let phantom = Region.make ~base:(1024 * mib) ~len:(4 * mib) in
  Alcotest.(check bool) "not believed" false
    (Memmap.believes_usable (Kitten.memmap k) phantom.Region.base);
  Kitten.inject_phantom_region k phantom;
  Alcotest.(check bool) "believed after injection" true
    (Memmap.believes_usable (Kitten.memmap k) phantom.Region.base)

let test_syscalls_local () =
  let s = native_stack () in
  let ctx = Helpers.ctx s 1 in
  Alcotest.(check int) "getpid" 1 (Kitten.syscall ctx ~number:Syscall.nr_getpid ~arg:0);
  Alcotest.(check int) "enosys" (-38) (Kitten.syscall ctx ~number:999 ~arg:0);
  let stats = Kitten.stats s.Helpers.kitten in
  Alcotest.(check int) "one local" 1 stats.Kitten.syscalls_local

let test_mmap_allocates () =
  let s = native_stack () in
  let ctx = Helpers.ctx s 1 in
  let addr = Kitten.syscall ctx ~number:Syscall.nr_mmap ~arg:(4 * mib) in
  Alcotest.(check bool) "mapped address" true (addr > 0);
  Alcotest.(check bool) "usable" true
    (Memmap.believes_usable (Kitten.memmap s.Helpers.kitten) addr);
  (* the mapping is real: a store through it succeeds under protection *)
  let s2 = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let ctx2 = Helpers.ctx s2 1 in
  let addr2 = Kitten.syscall ctx2 ~number:Syscall.nr_mmap ~arg:(4 * mib) in
  Kitten.store_addr ctx2 addr2;
  Alcotest.(check bool) "still running" true
    (Covirt_pisces.Enclave.is_running s2.Helpers.enclave);
  (* exhaustion surfaces as -ENOMEM, not a crash *)
  let huge = Kitten.syscall ctx ~number:Syscall.nr_mmap ~arg:(1 lsl 50) in
  Alcotest.(check int) "enomem" (-12) huge

let test_syscalls_forwarded () =
  let s = native_stack () in
  let ctx = Helpers.ctx s 1 in
  (* hobbes's default handler echoes the argument *)
  let ret = Kitten.syscall ctx ~number:Syscall.nr_write ~arg:123 in
  Alcotest.(check int) "forwarded result" 123 ret;
  let stats = Kitten.stats s.Helpers.kitten in
  Alcotest.(check int) "one forwarded" 1 stats.Kitten.syscalls_forwarded;
  Alcotest.(check int) "host serviced" 1
    (Covirt_hobbes.Hobbes.syscalls_serviced s.Helpers.hobbes)

let test_run_with_ticks () =
  let s = native_stack () in
  let ctx = Helpers.ctx s 1 in
  let ticks_before = (Kitten.stats s.Helpers.kitten).Kitten.ticks in
  (* burn ~0.5 simulated seconds at 10 Hz -> ~5 ticks *)
  let result =
    Kitten.run_with_ticks ctx (fun () ->
        Cpu.charge ctx.Kitten.cpu (Covirt_sim.Units.seconds_to_cycles ~ghz:1.7 0.5);
        17)
  in
  Alcotest.(check int) "result passes" 17 result;
  let ticks = (Kitten.stats s.Helpers.kitten).Kitten.ticks - ticks_before in
  Alcotest.(check bool) "ticks accounted" true (ticks >= 4 && ticks <= 6)

let test_irq_registration () =
  let s = native_stack () in
  let hits = ref 0 in
  Kitten.register_irq s.Helpers.kitten ~vector:0x55 (fun _ _ -> incr hits);
  let ctx = Helpers.ctx s 1 in
  Kitten.send_ipi ctx ~dest:2 ~vector:0x55;
  Alcotest.(check int) "handler ran" 1 !hits;
  (* unregistered vector counts as spurious *)
  Kitten.send_ipi ctx ~dest:2 ~vector:0x66;
  Alcotest.(check int) "spurious counted" 1
    (Kitten.stats s.Helpers.kitten).Kitten.spurious_irqs

let test_health_and_panic () =
  let s = native_stack () in
  Alcotest.(check bool) "healthy" true (Kitten.health s.Helpers.kitten = `Ok);
  Machine.mark_corrupted s.Helpers.machine
    ~enclave:(Kitten.enclave_id s.Helpers.kitten)
    ~cause:"test corruption";
  (match Kitten.health s.Helpers.kitten with
  | `Corrupted _ -> ()
  | `Ok -> Alcotest.fail "corruption not visible");
  match Kitten.assert_healthy s.Helpers.kitten with
  | exception Kitten.Kernel_panic _ -> ()
  | () -> Alcotest.fail "expected Kernel_panic"

let test_touch_believed_memory_guard () =
  let s = native_stack () in
  let ctx = Helpers.ctx s 1 in
  Alcotest.check_raises "unbelieved touch rejected"
    (Invalid_argument "Kitten.touch_believed_memory: kernel does not believe this")
    (fun () -> Kitten.touch_believed_memory ctx (1536 * mib))

let test_guest_boot_exit_counts () =
  (* Under Covirt, boot's cpuid/xsetbv must have trapped-and-emulated. *)
  let s = Helpers.boot_stack ~config:Covirt.Config.full () in
  match
    Covirt.Controller.instance_for s.Helpers.controller
      ~enclave_id:s.Helpers.enclave.Enclave.id
  with
  | None -> Alcotest.fail "no covirt instance"
  | Some inst ->
      let total_emul =
        List.fold_left
          (fun acc (_, hv) ->
            acc
            + (Covirt.Hypervisor.vmcs hv).Vmcs.stats.Vmcs.exits_emul)
          0 inst.Covirt.Controller.hypervisors
      in
      (* cpuid + xsetbv on each of 2 cores *)
      Alcotest.(check int) "emulations" 4 total_emul

let () =
  Alcotest.run "kitten"
    [
      ( "boot",
        [
          Alcotest.test_case "state" `Quick test_boot_state;
          Alcotest.test_case "transparency" `Quick test_boot_transparency;
          Alcotest.test_case "guest boot emulations" `Quick
            test_guest_boot_exit_counts;
        ] );
      ( "memory",
        [
          Alcotest.test_case "kalloc" `Quick test_kalloc_properties;
          Alcotest.test_case "kalloc near core" `Quick test_kalloc_near_core;
          Alcotest.test_case "memmap sync" `Quick test_memmap_sync_add_remove;
          Alcotest.test_case "phantom injection" `Quick
            test_memmap_phantom_injection;
          Alcotest.test_case "touch guard" `Quick test_touch_believed_memory_guard;
        ] );
      ( "syscalls",
        [
          Alcotest.test_case "local" `Quick test_syscalls_local;
          Alcotest.test_case "mmap allocates" `Quick test_mmap_allocates;
          Alcotest.test_case "forwarded" `Quick test_syscalls_forwarded;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "tick accounting" `Quick test_run_with_ticks;
          Alcotest.test_case "irq registration" `Quick test_irq_registration;
        ] );
      ( "health",
        [ Alcotest.test_case "corruption surfaces" `Quick test_health_and_panic ]
      );
    ]
