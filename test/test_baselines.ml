(* Baseline-model tests and the virtualization-architecture comparison. *)

open Covirt_hw
open Covirt_baselines

let model = Cost_model.default
let mib = Covirt_sim.Units.mib

let test_ipc_cost_structure () =
  let small = Full_virt.ipc_message_cycles model ~words:1 in
  let big = Full_virt.ipc_message_cycles model ~words:4096 in
  Alcotest.(check bool) "payload costs" true (big > small);
  (* even an empty message pays two exit pairs *)
  Alcotest.(check bool) "floor is two exits" true
    (small > 2.0 *. float_of_int model.Cost_model.vmexit_roundtrip);
  Alcotest.check_raises "validation"
    (Invalid_argument "Full_virt.ipc_message_cycles") (fun () ->
      ignore (Full_virt.ipc_message_cycles model ~words:0))

let test_reassign_scales_with_pages () =
  let small = Full_virt.memory_reassign_cycles model ~bytes:(2 * mib) ~vcpus:1 in
  let big = Full_virt.memory_reassign_cycles model ~bytes:(32 * mib) ~vcpus:1 in
  Alcotest.(check bool) "16x bytes ~16x cost" true
    (big > 10.0 *. small && big < 20.0 *. small);
  let many_vcpus =
    Full_virt.memory_reassign_cycles model ~bytes:(2 * mib) ~vcpus:8
  in
  Alcotest.(check bool) "vcpus add pause cost" true (many_vcpus > small)

let test_comparison_orders () =
  let rows = Covirt_harness.Compare_virt.ipc ~words:64 ~messages:200 () in
  let cost name =
    (List.find
       (fun r ->
         String.length r.Covirt_harness.Compare_virt.architecture
         >= String.length name
         && String.sub r.Covirt_harness.Compare_virt.architecture 0
              (String.length name)
            = name)
       rows)
      .Covirt_harness.Compare_virt.cycles_per_message
  in
  let native = cost "native" in
  let covirt = cost "Covirt" in
  let full = cost "full" in
  (* the paper's architecture claim, quantified *)
  Alcotest.(check bool) "native <= covirt" true (native <= covirt);
  Alcotest.(check bool) "covirt < full virtualization" true (covirt < full);
  (* Covirt's toll is the doorbell trap only: well under 2x native *)
  Alcotest.(check bool) "covirt within 2x native" true (covirt < 2.0 *. native)

let test_sharing_comparison () =
  let rows = Covirt_harness.Compare_virt.sharing ~quick:true () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "full virt costlier" true
        (r.Covirt_harness.Compare_virt.ratio > 1.0))
    rows

let () =
  Alcotest.run "baselines"
    [
      ( "full_virt",
        [
          Alcotest.test_case "ipc structure" `Quick test_ipc_cost_structure;
          Alcotest.test_case "reassign scaling" `Quick
            test_reassign_scales_with_pages;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "ipc ordering" `Quick test_comparison_orders;
          Alcotest.test_case "sharing ordering" `Quick test_sharing_comparison;
        ] );
    ]
