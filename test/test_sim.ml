(* Unit and property tests for the simulation substrate. *)

open Covirt_sim

let test_rng_determinism () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_split_independence () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  let child_vals = List.init 10 (fun _ -> Rng.bits64 child) in
  (* Drawing more from the parent must not change what an identically
     derived child would have produced. *)
  let parent2 = Rng.create ~seed:5 in
  let child2 = Rng.split parent2 in
  let child2_vals = List.init 10 (fun _ -> Rng.bits64 child2) in
  Alcotest.(check (list int64)) "split reproducible" child_vals child2_vals

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.int rng ~bound:17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean close to 2" true (Float.abs (mean -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 2.5 s.Stats.median;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Stats.stddev

let test_stats_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile a ~p:0.0);
  Alcotest.(check (float 1e-9)) "p50" 30.0 (Stats.percentile a ~p:50.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Stats.percentile a ~p:100.0);
  Alcotest.(check (float 1e-9)) "p25" 20.0 (Stats.percentile a ~p:25.0)

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample array")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "bad percentile"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1.0 |] ~p:101.0))

let test_stats_overheads () =
  Alcotest.(check (float 1e-9)) "overhead" 0.1
    (Stats.relative_overhead ~baseline:10.0 ~measured:11.0);
  Alcotest.(check (float 1e-9)) "rate slowdown" 0.1
    (Stats.relative_slowdown_of_rates ~baseline:10.0 ~measured:9.0)

let test_histogram_log_buckets () =
  let h = Histogram.create_log ~base:2.0 ~lo:1.0 ~hi:16.0 in
  List.iter (Histogram.add h) [ 1.5; 3.0; 3.9; 8.0; 100.0; 0.5 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  let buckets = Histogram.buckets h in
  (* underflow, [1,2), [2,4) x2, [8,16), overflow *)
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "bucket total" 6 total;
  let in_2_4 =
    List.exists (fun (lo, hi, c) -> lo = 2.0 && hi = 4.0 && c = 2) buckets
  in
  Alcotest.(check bool) "two in [2,4)" true in_2_4

let test_histogram_merge () =
  let mk () = Histogram.create_linear ~bucket_width:1.0 ~lo:0.0 ~hi:10.0 in
  let a = mk () and b = mk () in
  Histogram.add a 1.5;
  Histogram.add b 1.7;
  Histogram.add b 9.9;
  Histogram.merge_into ~dst:a b;
  Alcotest.(check int) "merged count" 3 (Histogram.count a);
  let mismatched = Histogram.create_linear ~bucket_width:2.0 ~lo:0.0 ~hi:10.0 in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Histogram.merge_into: geometry mismatch") (fun () ->
      Histogram.merge_into ~dst:a mismatched)

let test_histogram_validation () =
  Alcotest.check_raises "bad base" (Invalid_argument "Histogram.create_log: base <= 1")
    (fun () -> ignore (Histogram.create_log ~base:1.0 ~lo:1.0 ~hi:2.0));
  Alcotest.check_raises "bad range" (Invalid_argument "Histogram.create_log: bad range")
    (fun () -> ignore (Histogram.create_log ~base:2.0 ~lo:2.0 ~hi:1.0))

let test_units_round_trip () =
  let ghz = 1.7 in
  let cycles = 1_700_000 in
  Alcotest.(check (float 1e-9)) "to ms" 0.001
    (Units.cycles_to_seconds ~ghz cycles);
  Alcotest.(check int) "round trip" cycles
    (Units.seconds_to_cycles ~ghz (Units.cycles_to_seconds ~ghz cycles))

let test_units_pp_bytes () =
  Alcotest.(check string) "gib" "14.0GiB"
    (Format.asprintf "%a" Units.pp_bytes (14 * Units.gib));
  Alcotest.(check string) "bytes" "512B" (Format.asprintf "%a" Units.pp_bytes 512)

let test_table_render () =
  let t = Covirt_sim.Table.create ~columns:[ "a"; "bb" ] in
  Covirt_sim.Table.add_row t [ "1"; "2" ];
  Covirt_sim.Table.add_row t [ "333" ];
  let s = Covirt_sim.Table.render t in
  Alcotest.(check bool) "header present" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Covirt_sim.Table.add_row t [ "1"; "2"; "3" ])

let test_table_tsv () =
  let t = Covirt_sim.Table.create ~columns:[ "a"; "b" ] in
  Covirt_sim.Table.add_row t [ "1"; "2" ];
  Covirt_sim.Table.add_rule t;
  Covirt_sim.Table.add_row t [ "3"; "4" ];
  Alcotest.(check string) "tsv" "a\tb\n1\t2\n3\t4\n"
    (Covirt_sim.Table.render_tsv t)

let test_trace_ring () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record t ~tsc:i ~cpu:0 ~severity:Trace.Info (string_of_int i)
  done;
  let events = Trace.events t in
  Alcotest.(check int) "capacity kept" 4 (List.length events);
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  Alcotest.(check string) "oldest is 3" "3" (List.hd events).Trace.message;
  Alcotest.(check bool) "find" true
    (Option.is_some (Trace.find t ~f:(fun e -> e.Trace.message = "6")));
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events t))

let prop_percentile_monotone =
  Covirt_test_util.Helpers.qtest "percentile monotone in p"
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 50) (float_range 0.0 1000.0))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (a, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile a ~p:lo <= Stats.percentile a ~p:hi)

let prop_histogram_conserves =
  Covirt_test_util.Helpers.qtest "histogram conserves samples"
    QCheck2.Gen.(array_size (int_range 0 200) (float_range 0.0 1e6))
    (fun samples ->
      let h = Histogram.create_log ~base:2.0 ~lo:1.0 ~hi:1024.0 in
      Array.iter (Histogram.add h) samples;
      let bucketed =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h)
      in
      bucketed = Array.length samples && Histogram.count h = bucketed)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independence;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          Alcotest.test_case "overheads" `Quick test_stats_overheads;
          prop_percentile_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "log buckets" `Quick test_histogram_log_buckets;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
          prop_histogram_conserves;
        ] );
      ( "units",
        [
          Alcotest.test_case "round trip" `Quick test_units_round_trip;
          Alcotest.test_case "pp bytes" `Quick test_units_pp_bytes;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "tsv" `Quick test_table_tsv;
        ] );
      ("trace", [ Alcotest.test_case "ring" `Quick test_trace_ring ]);
    ]
