(* The dense-node control plane: Zipf sampler properties, admission
   invariants, batched command-queue FIFO ordering, churn leak
   regression, and byte-identity of the load generator across domain
   placements.  See lib/loadgen and DESIGN.md §15. *)

open Covirt_hw
module Rng = Covirt_sim.Rng
module Zipf = Covirt_loadgen.Zipf
module L = Covirt_loadgen.Loadgen
module Admission = Covirt.Admission
module Ctrl_channel = Covirt_pisces.Ctrl_channel
module Message = Covirt_pisces.Message
module Hist = Covirt_obs.Metrics.Hist

let qtest = Covirt_test_util.Helpers.qtest

(* --- Zipf sampler --- *)

let zipf_gen =
  QCheck2.Gen.(
    triple (int_range 1 200) (float_range 0.0 3.0) (int_range 0 1_000_000))

(* Rank-frequency monotonicity: the pmf never increases with rank, so
   rank 0 is the hottest tenant by construction. *)
let test_zipf_rank_monotone =
  qtest "zipf pmf monotone in rank" zipf_gen (fun (n, s, _) ->
      let z = Zipf.create ~n ~s in
      let ok = ref true in
      for k = 0 to n - 2 do
        if Zipf.pmf z k < Zipf.pmf z (k + 1) -. 1e-12 then ok := false
      done;
      !ok)

let test_zipf_cdf_normalised =
  qtest "zipf cdf ends at 1 and pmf sums to 1" zipf_gen (fun (n, s, _) ->
      let z = Zipf.create ~n ~s in
      let sum = ref 0. in
      for k = 0 to n - 1 do
        sum := !sum +. Zipf.pmf z k
      done;
      Float.abs (Zipf.cdf z (n - 1) -. 1.) < 1e-9
      && Float.abs (!sum -. 1.) < 1e-9)

let test_zipf_sample_range =
  qtest "zipf samples stay in [0, n)" zipf_gen (fun (n, s, seed) ->
      let z = Zipf.create ~n ~s in
      let rng = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 200 do
        let k = Zipf.sample z rng in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

(* Seed determinism: equal seeds give equal rank sequences, bit for
   bit; different split indices give distinct derived seeds. *)
let test_zipf_seed_determinism =
  qtest "zipf sampling is seed-deterministic" zipf_gen (fun (n, s, seed) ->
      let z = Zipf.create ~n ~s in
      let draw () =
        let rng = Rng.create ~seed in
        List.init 100 (fun _ -> Zipf.sample z rng)
      in
      draw () = draw ())

let test_split_streams_distinct =
  qtest "split_seed streams do not collide"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let seeds = List.init 64 (fun i -> Rng.split_seed ~seed ~index:i) in
      List.length (List.sort_uniq compare seeds) = 64)

(* --- Admission controller --- *)

(* Drive a random admit/settle schedule against a model; the in-flight
   bound must hold at every step and the peak must record it. *)
let test_admission_bound_held =
  qtest "admission never exceeds max_in_flight"
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_range 1 200) (int_range 0 9)))
    (fun (limit, script) ->
      let adm = Admission.create ~max_in_flight:limit () in
      let tokens = Queue.create () in
      let ok = ref true in
      List.iter
        (fun step ->
          if step < 7 then (
            (match Admission.admit_boot adm ~tenant:step ~now:0 with
            | Ok tok -> Queue.push tok tokens
            | Error (Admission.Boot_limit { in_flight; _ }) ->
                if in_flight < limit then ok := false
            | Error _ -> ());
            if Admission.in_flight adm > limit then ok := false)
          else if not (Queue.is_empty tokens) then
            Admission.settle adm (Queue.pop tokens))
        script;
      !ok && Admission.peak_in_flight adm <= limit)

let test_admission_settle_idempotent () =
  let adm = Admission.create ~max_in_flight:2 () in
  match Admission.admit_boot adm ~tenant:1 ~now:0 with
  | Error _ -> Alcotest.fail "first boot rejected"
  | Ok tok ->
      Admission.settle adm tok;
      Admission.settle adm tok;
      Alcotest.(check int) "double settle stays at zero" 0
        (Admission.in_flight adm)

let test_admission_rate_limit () =
  let adm =
    Admission.create ~bucket_capacity:2 ~refill_cycles:1000 ~max_in_flight:8 ()
  in
  let admit now = Admission.admit_op adm ~tenant:7 ~now in
  Alcotest.(check bool) "token 1" true (Result.is_ok (admit 0));
  Alcotest.(check bool) "token 2" true (Result.is_ok (admit 10));
  Alcotest.(check bool) "bucket empty" true (Result.is_error (admit 20));
  Alcotest.(check bool) "refilled after a full period" true
    (Result.is_ok (admit 1020));
  Alcotest.(check int) "rate rejections counted" 1
    (Admission.rejected_rate_limited adm)

(* Rejected boots leave no partial state: a loadgen run squeezed
   through a tiny in-flight bound must reject visibly yet still pass
   the leak audit and the static verifier. *)
let test_admission_rejects_leave_no_state () =
  let r =
    L.run ~domains:1
      (L.spec ~tenants:12 ~ops:150 ~shards:2 ~max_in_flight:1 ~settle_ops:9 ())
  in
  let t = L.totals r in
  Alcotest.(check bool) "some boots rejected" true (t.L.rejected_boot_limit > 0);
  Alcotest.(check bool) "audit clean despite rejections" true (L.ok r);
  Alcotest.(check bool) "bound held" true (L.peak_in_flight r <= 1)

let test_rate_limited_run_stays_clean () =
  let r =
    L.run ~domains:1
      (L.spec ~tenants:12 ~ops:150 ~shards:2 ~bucket_capacity:1
         ~refill_cycles:1_000_000 ())
  in
  let t = L.totals r in
  Alcotest.(check bool) "some ops rate-limited" true
    (t.L.rejected_rate_limited > 0);
  Alcotest.(check bool) "audit clean under rate limiting" true (L.ok r)

(* --- Batched command-queue drain --- *)

let test_batch_drain_fifo () =
  let machine = Covirt_test_util.Helpers.small_machine () in
  let cpu = Machine.cpu machine 1 in
  let ch = Ctrl_channel.create () in
  let send m = Ctrl_channel.send_to_host machine ~enclave_cpu:cpu ch m in
  for i = 0 to 9 do
    send (Message.Console (Printf.sprintf "m%d" i));
    (* Replies interleave with the FIFO but are routed to the O(1) ack
       side-table, never reordering the queue. *)
    send (Message.Ack { seq = 100 + i })
  done;
  Alcotest.(check int) "acks parked in the side table" 10
    (Ctrl_channel.pending_acks ch);
  let batch1 = Ctrl_channel.drain_host_side_n ch ~max:4 in
  let batch2 = Ctrl_channel.drain_host_side_n ch ~max:4 in
  let rest = Ctrl_channel.drain_host_side_n ch ~max:100 in
  let text =
    List.map
      (function Message.Console s -> s | _ -> Alcotest.fail "non-console")
      (batch1 @ batch2 @ rest)
  in
  Alcotest.(check (list string)) "per-enclave FIFO preserved across batches"
    (List.init 10 (Printf.sprintf "m%d"))
    text;
  Alcotest.(check int) "first batch bounded" 4 (List.length batch1);
  List.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "ack %d claimable" i)
        true
        (Result.is_ok (Ctrl_channel.take_ack ch ~seq:(100 + i))))
    (List.init 10 Fun.id);
  Alcotest.(check int) "ack table drained" 0 (Ctrl_channel.pending_acks ch)

let test_batched_service_matches_full_drain () =
  (* Same ops, serviced in batches of 1 vs a full drain: the kernel's
     replies and the host's bookkeeping must agree. *)
  let r1 = L.run ~domains:1 (L.spec ~tenants:8 ~ops:120 ~shards:2 ()) in
  Alcotest.(check bool) "batched servicing leaves no backlog" true
    (Array.for_all (fun s -> s.L.leaks.L.unclaimed_acks = 0) r1.L.shards)

(* --- Determinism across domain placements --- *)

let test_domains_byte_identical () =
  let spec = L.spec ~tenants:14 ~ops:180 ~shards:7 () in
  let t1 = L.transcript (L.run ~domains:1 spec) in
  let t2 = L.transcript (L.run ~domains:2 spec) in
  let t7 = L.transcript (L.run ~domains:7 spec) in
  Alcotest.(check string) "domains 1 = 2" t1 t2;
  Alcotest.(check string) "domains 1 = 7" t1 t7

let test_json_deterministic () =
  let spec = L.spec ~tenants:8 ~ops:100 ~shards:2 () in
  Alcotest.(check string) "json byte-identical across domains"
    (L.to_json (L.run ~domains:1 spec))
    (L.to_json (L.run ~domains:2 spec))

(* --- Churn leak regression --- *)

(* The 1k-op churn loop: every registry must end exactly at the live
   population — a single stale kernel entry, vector, segment, bucket
   or ack means monotonic growth under density. *)
let test_churn_leaves_nothing () =
  let r = L.run ~domains:1 (L.spec ~tenants:10 ~ops:1000 ~shards:2 ()) in
  let t = L.totals r in
  Alcotest.(check bool) "churn actually destroyed enclaves" true
    (t.L.destroys > 20);
  Array.iter
    (fun s ->
      let l = s.L.leaks in
      Alcotest.(check int) "enclave registry pruned" l.L.live_tenants
        l.L.live_enclaves;
      Alcotest.(check int) "kernel registry pruned" l.L.live_tenants
        l.L.kernel_entries;
      Alcotest.(check int) "controller instances pruned" l.L.live_tenants
        l.L.controller_instances;
      Alcotest.(check int) "segments match live exports" l.L.live_exports
        l.L.segments;
      Alcotest.(check int) "vectors match live grants" l.L.vectors_expected
        l.L.vectors_outstanding;
      Alcotest.(check int) "vector space conserved" 0 l.L.vectors_lost;
      Alcotest.(check int) "no orphaned acks" 0 l.L.unclaimed_acks;
      Alcotest.(check int) "verifier clean at quiesce" 0 s.L.violations)
    r.L.shards

(* --- Golden gate: fixed-seed dense churn --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_dense_churn () =
  let expected = read_file "golden/loadgen.expected" in
  let actual = L.transcript (L.run ~domains:1 (L.spec ())) in
  if not (String.equal expected actual) then
    Alcotest.failf
      "dense-churn transcript diverged from golden/loadgen.expected \
       (regenerate with dune exec test/golden/gen_loadgen.exe only for an \
       intentional semantic change); got:\n%s"
      actual

let () =
  Alcotest.run "loadgen"
    [
      ( "zipf",
        [
          test_zipf_rank_monotone;
          test_zipf_cdf_normalised;
          test_zipf_sample_range;
          test_zipf_seed_determinism;
          test_split_streams_distinct;
        ] );
      ( "admission",
        [
          test_admission_bound_held;
          Alcotest.test_case "settle is idempotent" `Quick
            test_admission_settle_idempotent;
          Alcotest.test_case "token bucket refills on tenant clock" `Quick
            test_admission_rate_limit;
          Alcotest.test_case "rejected boots leave no state" `Quick
            test_admission_rejects_leave_no_state;
          Alcotest.test_case "rate-limited run stays clean" `Quick
            test_rate_limited_run_stays_clean;
        ] );
      ( "batch",
        [
          Alcotest.test_case "drain_n keeps FIFO order" `Quick
            test_batch_drain_fifo;
          Alcotest.test_case "batched servicing leaves no backlog" `Quick
            test_batched_service_matches_full_drain;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical at domains 1/2/7" `Quick
            test_domains_byte_identical;
          Alcotest.test_case "json deterministic" `Quick
            test_json_deterministic;
        ] );
      ( "churn",
        [
          Alcotest.test_case "1k-op churn leaves nothing behind" `Quick
            test_churn_leaves_nothing;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fixed-seed dense churn matches snapshot" `Quick
            test_golden_dense_churn;
        ] );
    ]
