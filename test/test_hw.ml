(* Hardware component tests: addresses, NUMA, cost model, TLB, MSR,
   I/O ports, APIC, physical memory map. *)

open Covirt_hw

let mib = Covirt_sim.Units.mib

let test_addr_alignment () =
  Alcotest.(check int) "down" 0x200000 (Addr.page_down 0x2fffff ~size:Addr.page_size_2m);
  Alcotest.(check int) "up" 0x400000 (Addr.page_up 0x200001 ~size:Addr.page_size_2m);
  Alcotest.(check bool) "aligned" true (Addr.is_aligned 0x200000 ~size:Addr.page_size_2m);
  Alcotest.(check int) "pfn" 2 (Addr.pfn 0x2100 ~size:4096)

let test_numa_mapping () =
  let t = Numa.create ~zones:2 ~cores_per_zone:4 ~mem_per_zone:(1024 * mib) in
  Alcotest.(check int) "cores" 8 (Numa.cores t);
  Alcotest.(check int) "core 3 zone" 0 (Numa.zone_of_core t ~core:3);
  Alcotest.(check int) "core 4 zone" 1 (Numa.zone_of_core t ~core:4);
  Alcotest.(check int) "addr zone 0" 0 (Numa.zone_of_addr t (512 * mib));
  Alcotest.(check int) "addr zone 1" 1 (Numa.zone_of_addr t (1500 * mib));
  (* addresses above DRAM report the last zone *)
  Alcotest.(check int) "mmio zone" 1 (Numa.zone_of_addr t (4096 * mib));
  Alcotest.(check (list int)) "cores of zone 1" [ 4; 5; 6; 7 ] (Numa.cores_of_zone t 1);
  Alcotest.(check bool) "local" true (Numa.is_local t ~core:0 ~addr:0)

let test_cost_model_reach () =
  let m = Cost_model.default in
  Alcotest.(check int) "2M reach" (32 * 2 * mib)
    (Cost_model.tlb_reach m ~page_size:Addr.Page_2m);
  Alcotest.(check bool) "4K reach includes STLB" true
    (Cost_model.tlb_reach m ~page_size:Addr.Page_4k = (64 + 1536) * 4096)

let test_cost_model_random_profile () =
  let m = Cost_model.default in
  let small, pm_small = Cost_model.random_profile m ~working_set:(16 * 1024) ~sharers:1 in
  let big, pm_big = Cost_model.random_profile m ~working_set:(512 * mib) ~sharers:1 in
  Alcotest.(check bool) "bigger ws costs more" true (big > small);
  Alcotest.(check bool) "dram fraction grows" true (pm_big > pm_small);
  Alcotest.(check bool) "fraction in [0,1]" true (pm_big <= 1.0 && pm_small >= 0.0);
  (* L3 sharing raises cost *)
  let shared, _ = Cost_model.random_profile m ~working_set:(8 * mib) ~sharers:8 in
  let alone, _ = Cost_model.random_profile m ~working_set:(8 * mib) ~sharers:1 in
  Alcotest.(check bool) "sharers raise cost" true (shared > alone)

let test_cost_model_ept_walk_order () =
  let m = Cost_model.default in
  Alcotest.(check bool) "1G cheapest" true
    (Cost_model.ept_walk_extra m Addr.Page_1g
     < Cost_model.ept_walk_extra m Addr.Page_2m
    && Cost_model.ept_walk_extra m Addr.Page_2m
       < Cost_model.ept_walk_extra m Addr.Page_4k)

let make_tlb () =
  let model = Cost_model.default in
  let rng = Covirt_sim.Rng.create ~seed:3 in
  Tlb.create ~model ~rng

let test_tlb_install_lookup () =
  let tlb = make_tlb () in
  Alcotest.(check bool) "miss" true (Tlb.lookup tlb 0x200000 = None);
  Tlb.install tlb 0x200000 ~page_size:Addr.Page_2m;
  Alcotest.(check bool) "hit same page" true
    (Option.is_some (Tlb.lookup tlb 0x3fffff));
  Alcotest.(check bool) "miss next page" true (Tlb.lookup tlb 0x400000 = None)

let test_tlb_flush_range () =
  let tlb = make_tlb () in
  Tlb.install tlb 0x200000 ~page_size:Addr.Page_2m;
  Tlb.install tlb 0x600000 ~page_size:Addr.Page_2m;
  Tlb.flush_range tlb (Region.make ~base:0x200000 ~len:Addr.page_size_2m);
  Alcotest.(check bool) "flushed" true (Tlb.lookup tlb 0x200000 = None);
  Alcotest.(check bool) "other survives" true
    (Option.is_some (Tlb.lookup tlb 0x600000))

let test_tlb_flush_all_and_counts () =
  let tlb = make_tlb () in
  Tlb.install tlb 0 ~page_size:Addr.Page_4k;
  Tlb.install tlb 8192 ~page_size:Addr.Page_4k;
  Alcotest.(check int) "two entries" 2 (Tlb.entry_count tlb);
  Tlb.flush_all tlb;
  Alcotest.(check int) "empty" 0 (Tlb.entry_count tlb);
  Alcotest.(check int) "flush counted" 1 (Tlb.flush_count tlb)

let test_tlb_eviction_bounded () =
  let tlb = make_tlb () in
  (* install far more 2M translations than there are slots *)
  for i = 0 to 99 do
    Tlb.install tlb (i * Addr.page_size_2m) ~page_size:Addr.Page_2m
  done;
  Alcotest.(check bool) "bounded by capacity" true
    (Tlb.entry_count tlb <= Cost_model.default.Cost_model.dtlb_entries_2m
                            + Cost_model.default.Cost_model.dtlb_entries_4k
                            + Cost_model.default.Cost_model.dtlb_entries_1g)

let test_tlb_miss_rates () =
  let model = Cost_model.default in
  Alcotest.(check (float 1e-9)) "small ws no misses" 0.0
    (Tlb.bulk_miss_rate ~model ~page_size:Addr.Page_2m ~working_set:mib);
  let rate =
    Tlb.bulk_miss_rate ~model ~page_size:Addr.Page_2m ~working_set:(256 * mib)
  in
  Alcotest.(check bool) "256MB/2M ~ 0.75" true (Float.abs (rate -. 0.75) < 0.01);
  let stream = Tlb.stream_miss_rate ~model ~page_size:Addr.Page_2m in
  Alcotest.(check bool) "stream rare" true (stream < 0.0001)

let test_msr_file () =
  let msrs = Msr.create () in
  Alcotest.(check bool) "efer long mode" true
    (Int64.logand (Msr.read msrs Msr.ia32_efer) 0x400L <> 0L);
  Msr.write msrs 0x123 42L;
  Alcotest.(check int64) "write/read" 42L (Msr.read msrs 0x123);
  Alcotest.(check int64) "unknown reads 0" 0L (Msr.read msrs 0x9999)

let test_msr_bitmap () =
  let bm = Msr.Bitmap.default_sensitive () in
  Alcotest.(check bool) "smm protected" true
    (Msr.Bitmap.is_protected bm Msr.ia32_smm_monitor_ctl);
  Alcotest.(check bool) "pat open" false (Msr.Bitmap.is_protected bm Msr.ia32_pat);
  Msr.Bitmap.unprotect bm Msr.ia32_smm_monitor_ctl;
  Alcotest.(check bool) "unprotected" false
    (Msr.Bitmap.is_protected bm Msr.ia32_smm_monitor_ctl)

let test_io_bitmap () =
  let bm = Io_port.Bitmap.default_sensitive () in
  Alcotest.(check bool) "reset port" true
    (Io_port.Bitmap.is_protected bm Io_port.reset_port);
  Alcotest.(check bool) "pit" true (Io_port.Bitmap.is_protected bm Io_port.pit_channel0);
  Alcotest.(check bool) "serial open" false
    (Io_port.Bitmap.is_protected bm Io_port.serial_com1);
  Alcotest.check_raises "range check"
    (Invalid_argument "Io_port.Bitmap.is_protected") (fun () ->
      ignore (Io_port.Bitmap.is_protected bm 70000))

let test_apic_irr_priority () =
  let apic = Apic.create ~apic_id:0 in
  Apic.raise_irr apic ~vector:0x40;
  Apic.raise_irr apic ~vector:0xef;
  Apic.raise_irr apic ~vector:0x80;
  Alcotest.(check (option int)) "highest first" (Some 0xef) (Apic.ack_highest apic);
  Alcotest.(check (option int)) "then 0x80" (Some 0x80) (Apic.ack_highest apic);
  Alcotest.(check (option int)) "then 0x40" (Some 0x40) (Apic.ack_highest apic);
  Alcotest.(check (option int)) "empty" None (Apic.ack_highest apic)

let test_apic_pir () =
  let apic = Apic.create ~apic_id:1 in
  Apic.pir_post apic ~vector:0x40;
  Apic.pir_post apic ~vector:0x41;
  Alcotest.(check bool) "outstanding" true (Apic.pir_outstanding apic);
  Alcotest.(check (list int)) "drain ordered" [ 0x40; 0x41 ] (Apic.pir_drain apic);
  Alcotest.(check bool) "drained" false (Apic.pir_outstanding apic);
  Alcotest.(check (list int)) "second drain empty" [] (Apic.pir_drain apic)

let test_apic_nmi_and_timer () =
  let apic = Apic.create ~apic_id:2 in
  Alcotest.(check bool) "no nmi" false (Apic.take_nmi apic);
  Apic.raise_nmi apic;
  Alcotest.(check bool) "nmi taken" true (Apic.take_nmi apic);
  Alcotest.(check bool) "cleared" false (Apic.take_nmi apic);
  Apic.set_timer_hz apic 10.0;
  Alcotest.(check (float 0.0)) "hz" 10.0 (Apic.timer_hz apic)

let mk_mem () =
  let topology = Numa.create ~zones:2 ~cores_per_zone:2 ~mem_per_zone:(1024 * mib) in
  Phys_mem.create ~topology ~host_reserved_per_zone:(128 * mib)

let test_phys_mem_reservations () =
  let mem = mk_mem () in
  Alcotest.(check bool) "host owns bottom z0" true
    (Owner.equal (Phys_mem.owner_at mem 0) Owner.Host);
  Alcotest.(check bool) "host owns bottom z1" true
    (Owner.equal (Phys_mem.owner_at mem (1024 * mib)) Owner.Host);
  Alcotest.(check bool) "rest free" true
    (Owner.equal (Phys_mem.owner_at mem (512 * mib)) Owner.Free)

let test_phys_mem_alloc () =
  let mem = mk_mem () in
  (match Phys_mem.alloc mem ~owner:(Owner.Enclave 1) ~zone:1 ~len:(64 * mib) with
  | Ok r ->
      Alcotest.(check bool) "in zone 1" true (r.Region.base >= 1024 * mib);
      Alcotest.(check bool) "2M aligned" true
        (Addr.is_aligned r.Region.base ~size:Addr.page_size_2m);
      Alcotest.(check bool) "owned" true
        (Owner.equal (Phys_mem.owner_at mem r.Region.base) (Owner.Enclave 1));
      Phys_mem.release mem r;
      Alcotest.(check bool) "freed" true
        (Owner.equal (Phys_mem.owner_at mem r.Region.base) Owner.Free)
  | Error e -> Alcotest.fail e);
  (* over-allocation fails *)
  Alcotest.(check bool) "too big fails" true
    (Result.is_error
       (Phys_mem.alloc mem ~owner:Owner.Host ~zone:0 ~len:(2048 * mib)))

let test_phys_mem_free_accounting () =
  let mem = mk_mem () in
  let before = Phys_mem.free_bytes mem ~zone:0 in
  (match Phys_mem.alloc mem ~owner:(Owner.Enclave 9) ~zone:0 ~len:(32 * mib) with
  | Ok r ->
      Alcotest.(check int) "free shrinks" (before - (32 * mib))
        (Phys_mem.free_bytes mem ~zone:0);
      Phys_mem.release mem r;
      Alcotest.(check int) "free restored" before (Phys_mem.free_bytes mem ~zone:0)
  | Error e -> Alcotest.fail e)

let test_phys_mem_devices () =
  let mem = mk_mem () in
  let window = Phys_mem.add_device mem ~name:"nic" ~len:(16 * mib) in
  Alcotest.(check bool) "above DRAM" true (window.Region.base >= Phys_mem.mmio_base mem);
  (match Phys_mem.owner_at mem window.Region.base with
  | Owner.Device d -> Alcotest.(check string) "named" "nic" d
  | _ -> Alcotest.fail "not device-owned")

let test_phys_mem_assign () =
  let mem = mk_mem () in
  let r = Region.make ~base:(256 * mib) ~len:(16 * mib) in
  (match Phys_mem.assign mem ~owner:(Owner.Enclave 2) r with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "double assign fails" true
    (Result.is_error (Phys_mem.assign mem ~owner:(Owner.Enclave 3) r))

let () =
  Alcotest.run "hw"
    [
      ("addr", [ Alcotest.test_case "alignment" `Quick test_addr_alignment ]);
      ("numa", [ Alcotest.test_case "mapping" `Quick test_numa_mapping ]);
      ( "cost_model",
        [
          Alcotest.test_case "tlb reach" `Quick test_cost_model_reach;
          Alcotest.test_case "random profile" `Quick test_cost_model_random_profile;
          Alcotest.test_case "ept walk order" `Quick test_cost_model_ept_walk_order;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "install/lookup" `Quick test_tlb_install_lookup;
          Alcotest.test_case "flush range" `Quick test_tlb_flush_range;
          Alcotest.test_case "flush all" `Quick test_tlb_flush_all_and_counts;
          Alcotest.test_case "eviction bounded" `Quick test_tlb_eviction_bounded;
          Alcotest.test_case "miss rates" `Quick test_tlb_miss_rates;
        ] );
      ( "msr",
        [
          Alcotest.test_case "file" `Quick test_msr_file;
          Alcotest.test_case "bitmap" `Quick test_msr_bitmap;
        ] );
      ("io", [ Alcotest.test_case "bitmap" `Quick test_io_bitmap ]);
      ( "apic",
        [
          Alcotest.test_case "irr priority" `Quick test_apic_irr_priority;
          Alcotest.test_case "posted interrupts" `Quick test_apic_pir;
          Alcotest.test_case "nmi and timer" `Quick test_apic_nmi_and_timer;
        ] );
      ( "phys_mem",
        [
          Alcotest.test_case "reservations" `Quick test_phys_mem_reservations;
          Alcotest.test_case "alloc/release" `Quick test_phys_mem_alloc;
          Alcotest.test_case "free accounting" `Quick test_phys_mem_free_accounting;
          Alcotest.test_case "devices" `Quick test_phys_mem_devices;
          Alcotest.test_case "assign" `Quick test_phys_mem_assign;
        ] );
    ]
