(* XEMEM tests: name service, export validation, attach/detach
   bookkeeping, blocked-caller accounting, reclaim (with and without
   the cleanup bug). *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_test_util

let mib = Covirt_sim.Units.mib

(* Two native enclaves: t0 (cores 1,2) and an exporter on core 3. *)
let two_enclaves () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let exporter, exporter_kitten = Helpers.second_enclave s () in
  (s, exporter, exporter_kitten)

let export_segment s exporter exporter_kitten ~name ~bytes =
  match Kitten.kalloc exporter_kitten ~bytes with
  | Error e -> Alcotest.fail e
  | Ok base -> (
      let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
      match
        Covirt_xemem.Xemem.export xemem
          ~exporter:(Covirt_xemem.Name_service.Enclave_export exporter.Enclave.id)
          ~name
          ~pages:[ Region.make ~base ~len:bytes ]
      with
      | Ok segid -> (base, segid)
      | Error e -> Alcotest.fail e)

let test_name_service_basics () =
  let ns = Covirt_xemem.Name_service.create () in
  let pages = [ Region.make ~base:0 ~len:4096 ] in
  (match
     Covirt_xemem.Name_service.register ns ~name:"a"
       ~exporter:Covirt_xemem.Name_service.Host_export ~pages
   with
  | Ok s -> Alcotest.(check string) "name kept" "a" s.Covirt_xemem.Name_service.name
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "duplicate rejected" true
    (Result.is_error
       (Covirt_xemem.Name_service.register ns ~name:"a"
          ~exporter:Covirt_xemem.Name_service.Host_export ~pages));
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error
       (Covirt_xemem.Name_service.register ns ~name:"b"
          ~exporter:Covirt_xemem.Name_service.Host_export ~pages:[]));
  Alcotest.(check bool) "unaligned rejected" true
    (Result.is_error
       (Covirt_xemem.Name_service.register ns ~name:"c"
          ~exporter:Covirt_xemem.Name_service.Host_export
          ~pages:[ Region.make ~base:100 ~len:50 ]));
  Alcotest.(check bool) "lookup" true
    (Option.is_some (Covirt_xemem.Name_service.lookup ns ~name:"a"))

let test_export_ownership_enforced () =
  let s, exporter, _ = two_enclaves () in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  (* exporting memory the exporter does not own must fail *)
  Alcotest.(check bool) "foreign export rejected" true
    (Result.is_error
       (Covirt_xemem.Xemem.export xemem
          ~exporter:(Covirt_xemem.Name_service.Enclave_export exporter.Enclave.id)
          ~name:"stolen"
          ~pages:[ Region.make ~base:0 ~len:4096 ]))

let test_attach_detach_flow () =
  let s, exporter, exporter_kitten = two_enclaves () in
  let base, segid =
    export_segment s exporter exporter_kitten ~name:"ring" ~bytes:(4 * mib)
  in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  (match Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:"ring" with
  | Ok (addr, len) ->
      Alcotest.(check int) "identity address" base addr;
      Alcotest.(check int) "length" (4 * mib) len
  | Error e -> Alcotest.fail e);
  (* attacher's kernel now believes the segment usable *)
  Alcotest.(check bool) "attacher believes" true
    (Memmap.believes_usable (Kitten.memmap s.Helpers.kitten) base);
  (* name service bookkeeping *)
  let ns = Covirt_xemem.Xemem.registry xemem in
  (match Covirt_xemem.Name_service.lookup_segid ns ~segid with
  | Some seg ->
      Alcotest.(check (list int)) "attacher listed"
        [ s.Helpers.enclave.Enclave.id ]
        seg.Covirt_xemem.Name_service.attachers
  | None -> Alcotest.fail "segment vanished");
  (match Covirt_xemem.Xemem.detach xemem s.Helpers.enclave ~name:"ring" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "belief revoked" true
    (not (Memmap.believes_usable (Kitten.memmap s.Helpers.kitten) base));
  Alcotest.(check int) "attach count" 1 (Covirt_xemem.Xemem.attach_count xemem)

let test_attach_charges_caller () =
  let s, exporter, exporter_kitten = two_enclaves () in
  let _ = export_segment s exporter exporter_kitten ~name:"big" ~bytes:(64 * mib) in
  let caller = Machine.cpu s.Helpers.machine 1 in
  let before = Cpu.rdtsc caller in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  (match Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:"big" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let blocked = Cpu.rdtsc caller - before in
  (* 64 MiB = 16384 frames at ~35 cycles each: substantial blocked time *)
  Alcotest.(check bool) "caller blocked for host work" true (blocked > 100_000)

let test_attach_latency_scales_with_size () =
  let measure bytes =
    let s, exporter, exporter_kitten = two_enclaves () in
    let _ = export_segment s exporter exporter_kitten ~name:"seg" ~bytes in
    let caller = Machine.cpu s.Helpers.machine 1 in
    let before = Cpu.rdtsc caller in
    let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
    (match Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:"seg" with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    Cpu.rdtsc caller - before
  in
  let small = measure (4 * mib) and big = measure (32 * mib) in
  Alcotest.(check bool) "8x pages cost more" true (big > 4 * small)

let test_attach_unknown_name () =
  let s, _, _ = two_enclaves () in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  Alcotest.(check bool) "unknown name" true
    (Result.is_error (Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:"nope"))

let test_host_attach () =
  let s, exporter, exporter_kitten = two_enclaves () in
  let base, _ = export_segment s exporter exporter_kitten ~name:"h" ~bytes:(4 * mib) in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  match Covirt_xemem.Xemem.attach_host xemem ~name:"h" with
  | Ok (addr, _) -> Alcotest.(check int) "identity" base addr
  | Error e -> Alcotest.fail e

let test_reclaim_clean () =
  let s, exporter, exporter_kitten = two_enclaves () in
  let base, _ = export_segment s exporter exporter_kitten ~name:"r" ~bytes:(4 * mib) in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  (match Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:"r" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Covirt_xemem.Xemem.reclaim_export xemem ~name:"r" () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* clean reclaim: attacher was notified, belief revoked *)
  Alcotest.(check bool) "belief revoked" true
    (not (Memmap.believes_usable (Kitten.memmap s.Helpers.kitten) base));
  Alcotest.(check bool) "segment gone" true
    (Covirt_xemem.Name_service.lookup (Covirt_xemem.Xemem.registry xemem) ~name:"r"
    = None)

let test_reclaim_cleanup_bug_leaves_stale_belief () =
  let s, exporter, exporter_kitten = two_enclaves () in
  let base, _ = export_segment s exporter exporter_kitten ~name:"war" ~bytes:(4 * mib) in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  (match Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:"war" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Covirt_xemem.Xemem.reclaim_export xemem ~name:"war" ~simulate_cleanup_bug:true () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the paper's war story: the co-kernel still believes the mapping *)
  Alcotest.(check bool) "stale belief persists" true
    (Memmap.believes_usable (Kitten.memmap s.Helpers.kitten) base);
  (* but the host's authoritative view has dropped it *)
  Alcotest.(check bool) "host view dropped" true
    (not (Region.Set.mem s.Helpers.enclave.Enclave.shared base))

let () =
  Alcotest.run "xemem"
    [
      ( "name_service",
        [
          Alcotest.test_case "basics" `Quick test_name_service_basics;
          Alcotest.test_case "ownership" `Quick test_export_ownership_enforced;
        ] );
      ( "attach",
        [
          Alcotest.test_case "flow" `Quick test_attach_detach_flow;
          Alcotest.test_case "charges caller" `Quick test_attach_charges_caller;
          Alcotest.test_case "latency scales" `Quick
            test_attach_latency_scales_with_size;
          Alcotest.test_case "unknown name" `Quick test_attach_unknown_name;
          Alcotest.test_case "host attach" `Quick test_host_attach;
        ] );
      ( "reclaim",
        [
          Alcotest.test_case "clean" `Quick test_reclaim_clean;
          Alcotest.test_case "cleanup bug" `Quick
            test_reclaim_cleanup_bug_leaves_stale_belief;
        ] );
    ]
