(* The fleet runner's determinism contract: the domain count is
   physical placement only.  Campaigns, soaks and sweeps must render
   byte-identical tables at domains 1, 2 and 7; shard seeds must be
   pure in (seed, index) with pairwise non-overlapping streams; and a
   crashing shard must fail only its own slot. *)

open Covirt_test_util
module Fleet = Covirt_fleet.Fleet
module Rng = Covirt_sim.Rng
module Campaign = Covirt_harness.Campaign
module Soak = Covirt_resilience.Soak
module Fig5 = Covirt_harness.Fig5

let render = Covirt_sim.Table.render

(* --- determinism matrix ---------------------------------------------- *)

let matrix_domains = [ 1; 2; 7 ]

let assert_identical what outputs =
  match outputs with
  | [] -> ()
  | (d0, first) :: rest ->
      List.iter
        (fun (d, s) ->
          Alcotest.(check string)
            (Printf.sprintf "%s identical at domains:%d vs domains:%d" what d0
               d)
            first s)
        rest

let test_campaign_matrix () =
  assert_identical "campaign table"
    (List.map
       (fun d ->
         (d, render (Campaign.table (Campaign.run ~trials:6 ~seed:7 ~domains:d ()))))
       matrix_domains)

let test_soak_matrix () =
  assert_identical "soak table"
    (List.map
       (fun d ->
         ( d,
           render
             (Soak.table (Soak.run ~trials:30 ~seed:2026 ~shards:5 ~domains:d ()))
         ))
       matrix_domains)

let test_fig5_matrix () =
  let capture d =
    let rows = Fig5.run ~quick:true ~domains:d () in
    render (Fig5.stream_table rows) ^ render (Fig5.gups_table rows)
  in
  assert_identical "fig5 tables"
    (List.map (fun d -> (d, capture d)) matrix_domains)

(* --- shard seeds ------------------------------------------------------ *)

(* Pure in (seed, index): the derivation must not depend on how many
   other shards exist or in which order they are evaluated. *)
let prop_split_seed_pure =
  Helpers.qtest "split_seed pure in (seed, index)"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 1024))
    (fun (seed, index) ->
      let a = Rng.split_seed ~seed ~index in
      (* Deriving any other shard's seed in between must not perturb
         the result — there is no hidden state to advance. *)
      List.iter
        (fun i -> ignore (Rng.split_seed ~seed ~index:i))
        (List.init 16 (fun i -> (index + i) mod 1024));
      a >= 0 && a = Rng.split_seed ~seed ~index)

(* Streams seeded from distinct shard indexes never produce the same
   raw 64-bit draw across a 10^5-draw budget: with four 25k-draw
   streams a single collision would be a ~1e-9 event, so any overlap
   means the split is reusing state. *)
let prop_split_streams_disjoint =
  Helpers.qtest ~count:5 "split streams pairwise non-overlapping"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let streams = 4 and draws = 25_000 in
      let seen = Hashtbl.create (streams * draws) in
      let overlap = ref false in
      for index = 0 to streams - 1 do
        let rng = Rng.create ~seed:(Rng.split_seed ~seed ~index) in
        for _ = 1 to draws do
          let v = Rng.bits64 rng in
          (match Hashtbl.find_opt seen v with
          | Some owner when owner <> index -> overlap := true
          | _ -> ());
          Hashtbl.replace seen v index
        done
      done;
      not !overlap)

let prop_slice_partition =
  Helpers.qtest "slice is a balanced contiguous partition"
    QCheck2.Gen.(pair (int_range 0 500) (int_range 1 64))
    (fun (n, shards) ->
      let slices = List.init shards (Fleet.slice ~n ~shards) in
      let contiguous =
        List.for_all2
          (fun (_, hi) (lo, _) -> hi = lo)
          (List.filteri (fun i _ -> i < shards - 1) slices)
          (List.tl slices)
      in
      let sizes = List.map (fun (lo, hi) -> hi - lo) slices in
      let min_s = List.fold_left min max_int sizes
      and max_s = List.fold_left max 0 sizes in
      fst (List.hd slices) = 0
      && snd (List.nth slices (shards - 1)) = n
      && contiguous
      && max_s - min_s <= 1)

(* --- crash containment ------------------------------------------------ *)

let test_shard_failed_typed () =
  match
    Fleet.map ~domains:2 ~seed:1 ~shards:5 (fun ~shard_seed:_ ~index ->
        if index = 2 then failwith "boom" else index)
  with
  | _ -> Alcotest.fail "expected Fleet.Shard_failed"
  | exception Fleet.Shard_failed { shard; attempts; message } ->
      Alcotest.(check int) "failing shard index" 2 shard;
      Alcotest.(check int) "default retry made two attempts" 2 attempts;
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the exception" true
        (contains message "boom")

let test_failure_isolated_to_slot () =
  let results =
    Fleet.map_result ~domains:3 ~seed:1 ~shards:7 (fun ~shard_seed:_ ~index ->
        if index = 4 then raise Exit else index * 10)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v ->
          Alcotest.(check bool) "healthy slot" true (i <> 4);
          Alcotest.(check int) "slot keyed by index" (i * 10) v
      | Error { Fleet.shard; _ } ->
          Alcotest.(check int) "only shard 4 fails" 4 shard)
    results

let test_retry_recovers_flaky_shard () =
  (* domains:1 keeps the attempt counter on one domain; the retry
     itself always happens on the domain that ran the first attempt. *)
  let attempts = Hashtbl.create 8 in
  let results =
    Fleet.map ~domains:1 ~seed:1 ~shards:4 (fun ~shard_seed:_ ~index ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts index) in
        Hashtbl.replace attempts index n;
        if index = 1 && n = 1 then failwith "transient";
        index)
  in
  Alcotest.(check (array int)) "all slots recovered" [| 0; 1; 2; 3 |] results;
  Alcotest.(check int) "flaky shard took two attempts" 2
    (Hashtbl.find attempts 1)

let test_stress_64_shards () =
  (* 64 shards of real RNG work across 8 domains, byte-identical to the
     single-domain run — the CI stress case. *)
  let body ~shard_seed ~index =
    let rng = Rng.create ~seed:shard_seed in
    let acc = ref 0L in
    for _ = 1 to 1000 do
      acc := Int64.add !acc (Rng.bits64 rng)
    done;
    (index, Int64.to_string !acc)
  in
  let seq = Fleet.map ~domains:1 ~seed:99 ~shards:64 body in
  let par = Fleet.map ~domains:8 ~seed:99 ~shards:64 body in
  Alcotest.(check (array (pair int string)))
    "64-shard fan-out identical at domains 1 and 8" seq par

let test_shard_seed_matches_manual_loop () =
  (* Fleet.map's seeding is exactly the documented derivation: a
     sequential loop calling split_seed reproduces the shard seeds. *)
  let seeds =
    Fleet.map ~domains:4 ~seed:123 ~shards:9 (fun ~shard_seed ~index:_ ->
        shard_seed)
  in
  Array.iteri
    (fun i s ->
      Alcotest.(check int) "seed slot" (Rng.split_seed ~seed:123 ~index:i) s)
    seeds

let () =
  Alcotest.run "fleet"
    [
      ( "determinism",
        [
          Alcotest.test_case "campaign matrix 1/2/7" `Slow test_campaign_matrix;
          Alcotest.test_case "soak matrix 1/2/7" `Slow test_soak_matrix;
          Alcotest.test_case "fig5 matrix 1/2/7" `Slow test_fig5_matrix;
          Alcotest.test_case "seeding matches manual loop" `Quick
            test_shard_seed_matches_manual_loop;
        ] );
      ( "seeds",
        [ prop_split_seed_pure; prop_split_streams_disjoint; prop_slice_partition ]
      );
      ( "containment",
        [
          Alcotest.test_case "typed Shard_failed" `Quick test_shard_failed_typed;
          Alcotest.test_case "failure isolated to its slot" `Quick
            test_failure_isolated_to_slot;
          Alcotest.test_case "retry recovers a flaky shard" `Quick
            test_retry_recovers_flaky_shard;
          Alcotest.test_case "64-shard stress" `Slow test_stress_64_shards;
        ] );
    ]
