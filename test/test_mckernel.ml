(* IHK/McKernel tests: the third co-kernel architecture under the same
   protection layer (the paper's generalizability claim), plus the
   proxy-process delegation semantics themselves. *)

open Covirt_hw
open Covirt_pisces
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let boot_mckernel ~config () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let kernel, get = Covirt_mckernel.Mckernel.make_kernel () in
  let enclave =
    Pisces.create_enclave pisces ~name:"mck" ~cores:[ 1; 2 ]
      ~mem:[ (0, 256 * mib) ] ()
    |> Result.get_ok
  in
  Pisces.boot pisces enclave ~kernel |> Result.get_ok;
  (machine, pisces, controller, enclave, Option.get (get ()))

let test_boot_both_ways () =
  let machine, _, _, enclave, _ = boot_mckernel ~config:Covirt.Config.native () in
  Alcotest.(check bool) "running" true (Enclave.is_running enclave);
  Alcotest.(check bool) "host mode" true
    (not (Cpu.in_guest (Machine.cpu machine 1)));
  let machine2, _, _, enclave2, _ = boot_mckernel ~config:Covirt.Config.mem_ipi () in
  Alcotest.(check bool) "running protected" true (Enclave.is_running enclave2);
  Alcotest.(check bool) "guest mode" true (Cpu.in_guest (Machine.cpu machine2 1))

let test_delegation_roundtrip () =
  let _, _, _, _, mck = boot_mckernel ~config:Covirt.Config.mem () in
  let buffer =
    Covirt_mckernel.Mckernel.alloc_app_memory mck ~bytes:(1 * mib)
    |> Result.get_ok
  in
  let ret =
    Covirt_mckernel.Mckernel.syscall mck ~core:1 ~number:1 ~buffer:(Some buffer)
  in
  Alcotest.(check int) "proxy serviced against the mirror" (1 * mib) ret;
  Alcotest.(check int) "delegated" 1
    (Covirt_mckernel.Mckernel.syscalls_delegated mck);
  Alcotest.(check int) "proxy counted" 1
    (Covirt_mckernel.Proxy.delegations (Covirt_mckernel.Mckernel.proxy mck))

let test_delegation_charges_caller () =
  let machine, _, _, _, mck = boot_mckernel ~config:Covirt.Config.mem () in
  let buffer =
    Covirt_mckernel.Mckernel.alloc_app_memory mck ~bytes:(4 * mib)
    |> Result.get_ok
  in
  let cpu = Machine.cpu machine 1 in
  let before = Cpu.rdtsc cpu in
  ignore
    (Covirt_mckernel.Mckernel.syscall mck ~core:1 ~number:0 ~buffer:(Some buffer));
  (* the caller blocked on the proxy's host-side work *)
  Alcotest.(check bool) "blocked time charged" true
    (Cpu.rdtsc cpu - before > 2_000)

let test_mirror_desync_efault () =
  let _, _, _, _, mck = boot_mckernel ~config:Covirt.Config.mem () in
  let buffer =
    Covirt_mckernel.Mckernel.alloc_app_memory mck ~bytes:(1 * mib)
    |> Result.get_ok
  in
  (* the replication bug: the mirror loses the region *)
  Covirt_mckernel.Mckernel.desync_mirror mck buffer;
  let ret =
    Covirt_mckernel.Mckernel.syscall mck ~core:1 ~number:1 ~buffer:(Some buffer)
  in
  Alcotest.(check int) "EFAULT surfaces" (-14) ret;
  Alcotest.(check int) "proxy fault counted" 1
    (Covirt_mckernel.Proxy.faults (Covirt_mckernel.Mckernel.proxy mck))

let test_wild_write_native_vs_covirt () =
  let _, _, _, _, mck = boot_mckernel ~config:Covirt.Config.native () in
  Helpers.expect_panic "native wild write" (fun () ->
      Covirt_mckernel.Mckernel.wild_write mck ~core:1 0x3000);
  let machine2, pisces2, controller2, enclave2, mck2 =
    boot_mckernel ~config:Covirt.Config.mem ()
  in
  (match
     Pisces.run_guarded pisces2 (fun () ->
         Covirt_mckernel.Mckernel.wild_write mck2 ~core:1 0x3000)
   with
  | Error crash ->
      Alcotest.(check int) "contained" enclave2.Enclave.id
        crash.Pisces.enclave_id
  | Ok () -> Alcotest.fail "not contained");
  Alcotest.(check bool) "node alive" true (Machine.panicked machine2 = None);
  Alcotest.(check bool) "report collected" true
    (Covirt.reports controller2 ~enclave_id:enclave2.Enclave.id <> [])

let test_memory_hotplug_sync () =
  let _, pisces, _, enclave, mck = boot_mckernel ~config:Covirt.Config.mem () in
  let region =
    Pisces.add_memory pisces enclave ~zone:1 ~len:(16 * mib) |> Result.get_ok
  in
  Alcotest.(check bool) "believed" true
    (Region.Set.mem (Covirt_mckernel.Mckernel.memmap mck) region.Region.base);
  Pisces.remove_memory pisces enclave region |> Result.get_ok;
  Alcotest.(check bool) "revoked" true
    (not (Region.Set.mem (Covirt_mckernel.Mckernel.memmap mck) region.Region.base))

let test_delegation_costlier_than_kitten_local () =
  (* the integration-axis tradeoff: a McKernel getpid ships to the
     host proxy; a Kitten getpid stays local *)
  let _, _, _, _, mck = boot_mckernel ~config:Covirt.Config.native () in
  let machine = Covirt_mckernel.Mckernel.context_cpu mck ~core:1 in
  let before = Cpu.rdtsc machine in
  ignore (Covirt_mckernel.Mckernel.syscall mck ~core:1 ~number:39 ~buffer:None);
  let mck_cost = Cpu.rdtsc machine - before in
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let ctx = Helpers.ctx s 1 in
  let cpu = ctx.Covirt_kitten.Kitten.cpu in
  let before2 = Cpu.rdtsc cpu in
  ignore
    (Covirt_kitten.Kitten.syscall ctx ~number:Covirt_kitten.Syscall.nr_getpid
       ~arg:0);
  let kitten_cost = Cpu.rdtsc cpu - before2 in
  Alcotest.(check bool) "delegation costs more than local" true
    (mck_cost > 3 * kitten_cost)

let () =
  Alcotest.run "mckernel"
    [
      ( "mckernel",
        [
          Alcotest.test_case "boots both ways" `Quick test_boot_both_ways;
          Alcotest.test_case "delegation roundtrip" `Quick
            test_delegation_roundtrip;
          Alcotest.test_case "delegation charges caller" `Quick
            test_delegation_charges_caller;
          Alcotest.test_case "mirror desync -> EFAULT" `Quick
            test_mirror_desync_efault;
          Alcotest.test_case "wild write native vs covirt" `Quick
            test_wild_write_native_vs_covirt;
          Alcotest.test_case "memory hotplug sync" `Quick test_memory_hotplug_sync;
          Alcotest.test_case "delegation vs local cost" `Quick
            test_delegation_costlier_than_kitten_local;
        ] );
    ]
