(* Nautilus aerokernel tests: Covirt generalizes across co-kernel
   architectures (the paper's porting claim). *)

open Covirt_hw
open Covirt_pisces
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let boot_nautilus ~config () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let controller = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  let kernel, get = Covirt_nautilus.Nautilus.make_kernel () in
  match
    Pisces.create_enclave pisces ~name:"naut" ~cores:[ 1 ] ~mem:[ (0, 256 * mib) ] ()
  with
  | Error e -> Alcotest.fail e
  | Ok enclave -> (
      match Pisces.boot pisces enclave ~kernel with
      | Error e -> Alcotest.fail e
      | Ok () -> (
          match get () with
          | None -> Alcotest.fail "nautilus did not initialize"
          | Some naut -> (machine, pisces, controller, enclave, naut)))

let test_boots_natively_and_under_covirt () =
  let machine, _, _, enclave, _ = boot_nautilus ~config:Covirt.Config.native () in
  Alcotest.(check bool) "running" true (Enclave.is_running enclave);
  Alcotest.(check bool) "native: host mode" true
    (not (Cpu.in_guest (Machine.cpu machine 1)));
  let machine2, _, _, enclave2, _ = boot_nautilus ~config:Covirt.Config.full () in
  Alcotest.(check bool) "running under covirt" true (Enclave.is_running enclave2);
  Alcotest.(check bool) "guest mode" true (Cpu.in_guest (Machine.cpu machine2 1))

let test_precise_page_tables () =
  let _, _, _, enclave, naut = boot_nautilus ~config:Covirt.Config.native () in
  let pt = Covirt_nautilus.Nautilus.page_table naut in
  let owned =
    match Region.Set.to_list enclave.Enclave.memory with
    | r :: _ -> r
    | [] -> Alcotest.fail "no memory"
  in
  Alcotest.(check bool) "maps its own memory" true
    (Covirt_hw.Guest_pt.maps pt owned.Region.base);
  Alcotest.(check bool) "does not map host memory" false
    (Covirt_hw.Guest_pt.maps pt 0x3000)

let test_own_paging_stops_simple_wild_writes () =
  (* unlike Kitten's direct map, Nautilus's precise tables page-fault
     on a plain wild access — its own bug, its own fault *)
  let _, _, _, _, naut = boot_nautilus ~config:Covirt.Config.native () in
  match Covirt_nautilus.Nautilus.wild_write naut ~core:1 0x3000 with
  | exception Machine.Guest_page_fault { gva; _ } ->
      Alcotest.(check int) "faulting address" 0x3000 gva
  | () -> Alcotest.fail "expected a kernel page fault"

let test_porting_bug_native_escapes () =
  (* the porting-bug class: the mapping code itself maps a region the
     enclave does not own; the kernel's paging is no defence *)
  let machine, _, _, _, naut = boot_nautilus ~config:Covirt.Config.native () in
  Covirt_nautilus.Nautilus.map_extra naut (Region.make ~base:0 ~len:(4 * mib));
  Helpers.expect_panic "native port bug kills the node" (fun () ->
      Covirt_nautilus.Nautilus.wild_write naut ~core:1 0x3000);
  Alcotest.(check bool) "panicked" true (Machine.panicked machine <> None)

let test_porting_bug_covirt_contained () =
  let machine, pisces, controller, enclave, naut =
    boot_nautilus ~config:Covirt.Config.mem ()
  in
  Covirt_nautilus.Nautilus.map_extra naut (Region.make ~base:0 ~len:(4 * mib));
  (match
     Pisces.run_guarded pisces (fun () ->
         Covirt_nautilus.Nautilus.wild_write naut ~core:1 0x3000)
   with
  | Ok () -> Alcotest.fail "not contained"
  | Error crash ->
      Alcotest.(check int) "nautilus terminated" enclave.Enclave.id
        crash.Pisces.enclave_id);
  Alcotest.(check bool) "node alive" true (Machine.panicked machine = None);
  Alcotest.(check bool) "report captured" true
    (Covirt.reports controller ~enclave_id:enclave.Enclave.id <> [])

let test_threads_and_memory_sync () =
  let machine, pisces, _, enclave, naut =
    boot_nautilus ~config:Covirt.Config.mem ()
  in
  ignore machine;
  let count = ref 0 in
  Covirt_nautilus.Nautilus.spawn_thread naut ~core:1 (fun _cpu -> incr count);
  Alcotest.(check int) "thread ran" 1 !count;
  Alcotest.(check int) "counted" 1 (Covirt_nautilus.Nautilus.threads_run naut);
  (* hot-added memory becomes mapped in its precise tables *)
  match Pisces.add_memory pisces enclave ~zone:1 ~len:(16 * mib) with
  | Error e -> Alcotest.fail e
  | Ok region ->
      Alcotest.(check bool) "new memory mapped" true
        (Covirt_hw.Guest_pt.maps
           (Covirt_nautilus.Nautilus.page_table naut)
           region.Region.base)

let () =
  Alcotest.run "nautilus"
    [
      ( "nautilus",
        [
          Alcotest.test_case "boots both ways" `Quick
            test_boots_natively_and_under_covirt;
          Alcotest.test_case "precise page tables" `Quick test_precise_page_tables;
          Alcotest.test_case "own paging stops simple bugs" `Quick
            test_own_paging_stops_simple_wild_writes;
          Alcotest.test_case "porting bug, native" `Quick
            test_porting_bug_native_escapes;
          Alcotest.test_case "porting bug, covirt" `Quick
            test_porting_bug_covirt_contained;
          Alcotest.test_case "threads and memory sync" `Quick
            test_threads_and_memory_sync;
        ] );
    ]
