(* Edge cases and failure paths that the mainline suites do not reach:
   command-queue overflow recovery, controller halt command, wild-read
   accounting, spurious-IPI accounting, NMI-doorbell vector neutrality,
   enclave restart cycles, and input validation across the API. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_test_util

let mib = Covirt_sim.Units.mib

(* --- machine counters --- *)

let test_wild_read_counter () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let ctx = Helpers.ctx s 1 in
  let before = s.Helpers.machine.Machine.wild_reads in
  (* reading host memory natively: an information leak, counted but not
     fatal *)
  Kitten.load_addr ctx 0x3000;
  Alcotest.(check int) "wild read counted" (before + 1)
    s.Helpers.machine.Machine.wild_reads;
  Alcotest.(check bool) "not fatal" true
    (Machine.panicked s.Helpers.machine = None)

let test_spurious_ipi_counter () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let victim, _ = Helpers.second_enclave s () in
  let before = s.Helpers.machine.Machine.spurious_ipis in
  (* a benign-vector cross-enclave IPI natively: delivered, counted as
     spurious interference *)
  Kitten.send_ipi (Helpers.ctx s 1) ~dest:(Enclave.bsp victim) ~vector:0x77;
  Alcotest.(check int) "spurious counted" (before + 1)
    s.Helpers.machine.Machine.spurious_ipis

(* --- NMI doorbells stay off the vector space --- *)

let test_nmi_doorbell_vector_neutrality () =
  (* The design rationale for NMIs: command-queue signalling must not
     consume IRQ vectors or appear as interrupts to the kernel.  After
     a storm of unmap flushes, the kernel has seen zero spurious
     vectors. *)
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  for _ = 1 to 10 do
    match Pisces.add_memory p s.Helpers.enclave ~zone:1 ~len:(8 * mib) with
    | Ok region -> (
        match Pisces.remove_memory p s.Helpers.enclave region with
        | Ok () -> ()
        | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.fail e
  done;
  let stats = Kitten.stats s.Helpers.kitten in
  Alcotest.(check int) "no spurious interrupts from doorbells" 0
    stats.Kitten.spurious_irqs;
  Alcotest.(check bool) "flushes actually happened" true
    (Covirt.Controller.total_flush_commands s.Helpers.controller >= 20)

(* --- command queue overflow recovery --- *)

let test_command_queue_overflow_recovery () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem ~cores:[ 1 ] () in
  let inst =
    Option.get
      (Covirt.Controller.instance_for s.Helpers.controller
         ~enclave_id:s.Helpers.enclave.Enclave.id)
  in
  let _, hv = List.hd inst.Covirt.Controller.hypervisors in
  let q = Covirt.Hypervisor.queue hv in
  (* wedge the queue manually *)
  for _ = 1 to Covirt.Command.slots do
    Covirt.Command.enqueue q Covirt.Command.Flush_tlb_all |> Result.get_ok
  done;
  Alcotest.(check bool) "full" true
    (Result.is_error (Covirt.Command.enqueue q Covirt.Command.Flush_tlb_all));
  (* a normal unmap must still succeed: the controller drains by NMI
     before re-enqueueing *)
  let p = Helpers.pisces s in
  (match Pisces.add_memory p s.Helpers.enclave ~zone:1 ~len:(8 * mib) with
  | Ok region -> (
      match Pisces.remove_memory p s.Helpers.enclave region with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "queue drained" 0 (Covirt.Command.pending q)

(* --- controller halt command --- *)

let test_halt_core_command () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem ~cores:[ 1 ] () in
  let inst =
    Option.get
      (Covirt.Controller.instance_for s.Helpers.controller
         ~enclave_id:s.Helpers.enclave.Enclave.id)
  in
  let core, hv = List.hd inst.Covirt.Controller.hypervisors in
  Covirt.Command.enqueue (Covirt.Hypervisor.queue hv) Covirt.Command.Halt_core
  |> Result.get_ok;
  Helpers.expect_crash "halt terminates" (fun () ->
      Machine.post_host_nmi s.Helpers.machine ~dest:core)

(* --- restart cycles --- *)

let test_enclave_restart_cycle () =
  (* crash, reclaim, and boot a fresh enclave on the same cores and
     memory — the master control process's recovery loop *)
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  (match
     Pisces.run_guarded p (fun () -> Kitten.store_addr (Helpers.ctx s 1) 0x3000)
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected crash");
  (* same cores, same zones: everything was reclaimed *)
  match
    Covirt_hobbes.Hobbes.launch_enclave s.Helpers.hobbes ~name:"reborn"
      ~cores:[ 1; 2 ]
      ~mem:[ (0, 256 * mib); (1, 256 * mib) ]
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok (enclave, kitten) ->
      Alcotest.(check bool) "reborn runs" true (Enclave.is_running enclave);
      (* and is protected again *)
      let ctx = Kitten.context kitten ~core:1 in
      (match Pisces.run_guarded p (fun () -> Kitten.store_addr ctx 0x3000) with
      | Error crash ->
          Alcotest.(check int) "new id" enclave.Enclave.id
            crash.Pisces.enclave_id
      | Ok () -> Alcotest.fail "reborn enclave unprotected")

let test_repeated_restart_no_leak () =
  let machine = Helpers.small_machine () in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let _c = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config:Covirt.Config.mem in
  let free0 = Phys_mem.free_bytes machine.Machine.mem ~zone:0 in
  for i = 1 to 8 do
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes
        ~name:(Printf.sprintf "cycle-%d" i) ~cores:[ 1 ] ~mem:[ (0, 128 * mib) ] ()
    with
    | Error e -> Alcotest.fail e
    | Ok (enclave, _) -> Pisces.destroy (Covirt_hobbes.Hobbes.pisces hobbes) enclave
  done;
  Alcotest.(check int) "no memory leaked over 8 cycles" free0
    (Phys_mem.free_bytes machine.Machine.mem ~zone:0);
  Alcotest.(check bool) "core back with host" true
    (Owner.equal (Machine.cpu machine 1).Cpu.owner Owner.Host)

(* --- validation odds and ends --- *)

let test_validation_errors () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  Alcotest.check_raises "charge negative" (Invalid_argument "Cpu.charge: negative")
    (fun () -> Cpu.charge (Machine.cpu s.Helpers.machine 0) (-1));
  Alcotest.check_raises "bad vector" (Invalid_argument "Apic: bad vector")
    (fun () -> Apic.raise_irr (Machine.cpu s.Helpers.machine 0).Cpu.apic ~vector:256);
  Alcotest.check_raises "bad ipi dest" (Invalid_argument "Machine.send_ipi: dest")
    (fun () ->
      Machine.send_ipi s.Helpers.machine ~from:(Machine.cpu s.Helpers.machine 0)
        ~dest:99 ~vector:0x40 ~kind:Apic.Fixed);
  Alcotest.(check bool) "kalloc rejects nonpositive" true
    (match Kitten.kalloc s.Helpers.kitten ~bytes:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_config_full_name () =
  Alcotest.(check string) "full name" "mem+ipi+msr+io"
    (Covirt.Config.name Covirt.Config.full);
  Alcotest.(check string) "vapic-full name" "ipi/full"
    (Covirt.Config.name
       { Covirt.Config.none with ipi = Covirt.Config.Ipi_vapic_full })

let test_shutdown_message_path () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  Pisces.destroy p s.Helpers.enclave;
  Alcotest.(check bool) "stopped" true
    (s.Helpers.enclave.Enclave.state = Enclave.Stopped);
  (* operations on a stopped enclave fail cleanly *)
  Alcotest.(check bool) "add_memory rejected" true
    (Result.is_error (Pisces.add_memory p s.Helpers.enclave ~zone:0 ~len:mib));
  Alcotest.(check bool) "grant rejected" true
    (Result.is_error
       (Pisces.grant_ipi_vector p s.Helpers.enclave ~vector:0x50 ~peer_core:2))

let () =
  Alcotest.run "edge"
    [
      ( "counters",
        [
          Alcotest.test_case "wild reads" `Quick test_wild_read_counter;
          Alcotest.test_case "spurious ipis" `Quick test_spurious_ipi_counter;
        ] );
      ( "command-queue",
        [
          Alcotest.test_case "NMI vector neutrality" `Quick
            test_nmi_doorbell_vector_neutrality;
          Alcotest.test_case "overflow recovery" `Quick
            test_command_queue_overflow_recovery;
          Alcotest.test_case "halt command" `Quick test_halt_core_command;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "restart cycle" `Quick test_enclave_restart_cycle;
          Alcotest.test_case "no leaks over restarts" `Quick
            test_repeated_restart_no_leak;
          Alcotest.test_case "stopped enclave ops" `Quick
            test_shutdown_message_path;
        ] );
      ( "validation",
        [
          Alcotest.test_case "errors" `Quick test_validation_errors;
          Alcotest.test_case "config names" `Quick test_config_full_name;
        ] );
    ]
