(* Kitten process/scheduler tests. *)

open Covirt_hw
open Covirt_kitten
open Covirt_test_util

let stack () = Helpers.boot_stack ~config:Covirt.Config.native ()

let test_run_to_completion () =
  let s = stack () in
  let sched = Scheduler.create () in
  let order = ref [] in
  let spawn name code =
    ignore
      (Scheduler.spawn sched ~name (fun _ctx ->
           order := name :: !order;
           code))
  in
  spawn "a" 0;
  spawn "b" 1;
  spawn "c" 2;
  Alcotest.(check int) "queued" 3 (Scheduler.run_queue_length sched);
  let ran = Scheduler.run sched (Helpers.ctx s 1) in
  Alcotest.(check int) "all ran" 3 ran;
  Alcotest.(check (list string)) "FIFO order" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check int) "two switches" 2 (Scheduler.context_switches sched);
  Alcotest.(check int) "queue drained" 0 (Scheduler.run_queue_length sched)

let test_exit_codes_and_accounting () =
  let s = stack () in
  let sched = Scheduler.create () in
  let heavy =
    Scheduler.spawn sched ~name:"heavy" (fun ctx ->
        Cpu.charge ctx.Kitten.cpu 1_000_000;
        42)
  in
  let light = Scheduler.spawn sched ~name:"light" (fun _ -> 7) in
  ignore (Scheduler.run sched (Helpers.ctx s 1));
  Alcotest.(check (option int)) "heavy code" (Some 42) (Process.exit_code heavy);
  Alcotest.(check (option int)) "light code" (Some 7) (Process.exit_code light);
  Alcotest.(check bool) "heavy charged more" true
    (heavy.Process.cpu_cycles > light.Process.cpu_cycles);
  Alcotest.(check bool) "heavy charged its work" true
    (heavy.Process.cpu_cycles >= 1_000_000)

let test_pids_sequential () =
  let s = stack () in
  ignore s;
  let sched = Scheduler.create () in
  let a = Scheduler.spawn sched ~name:"a" (fun _ -> 0) in
  let b = Scheduler.spawn sched ~name:"b" (fun _ -> 0) in
  Alcotest.(check int) "pid 1" 1 a.Process.pid;
  Alcotest.(check int) "pid 2" 2 b.Process.pid;
  Alcotest.(check int) "listed" 2 (List.length (Scheduler.processes sched))

let test_ticks_accounted_per_process () =
  (* a long-running process observes timer ticks *)
  let s = stack () in
  let sched = Scheduler.create () in
  let ticks_before = (Kitten.stats s.Helpers.kitten).Kitten.ticks in
  ignore
    (Scheduler.spawn sched ~name:"spin" (fun ctx ->
         Cpu.charge ctx.Kitten.cpu
           (Covirt_sim.Units.seconds_to_cycles ~ghz:1.7 1.0);
         0));
  ignore (Scheduler.run sched (Helpers.ctx s 1));
  let ticks = (Kitten.stats s.Helpers.kitten).Kitten.ticks - ticks_before in
  Alcotest.(check bool) "ticks during run" true (ticks >= 9 && ticks <= 11)

let test_contained_crash_propagates () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let sched = Scheduler.create () in
  ignore
    (Scheduler.spawn sched ~name:"buggy" (fun ctx ->
         Kitten.store_addr ctx 0x4000;
         0));
  Helpers.expect_crash "crash propagates" (fun () ->
      ignore (Scheduler.run sched (Helpers.ctx s 1)))

let () =
  Alcotest.run "scheduler"
    [
      ( "scheduler",
        [
          Alcotest.test_case "run to completion" `Quick test_run_to_completion;
          Alcotest.test_case "exit codes" `Quick test_exit_codes_and_accounting;
          Alcotest.test_case "pids" `Quick test_pids_sequential;
          Alcotest.test_case "ticks per process" `Quick
            test_ticks_accounted_per_process;
          Alcotest.test_case "contained crash" `Quick
            test_contained_crash_propagates;
        ] );
    ]
