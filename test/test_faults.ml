(* Fault-injection integration tests: every fault class from the
   paper's taxonomy, run both natively (where it corrupts or kills the
   node) and under Covirt (where it is contained to the offending
   enclave).  This is the paper's core claim, end to end. *)

open Covirt_hw
open Covirt_pisces
open Covirt_kitten
open Covirt_test_util

let mib = Covirt_sim.Units.mib

let crash_of p f =
  match Pisces.run_guarded p f with
  | Ok _ -> Alcotest.fail "expected containment"
  | Error crash -> crash

(* --- 1. Wild write into host kernel memory --- *)

let test_wild_host_write_native () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  Helpers.expect_panic "node dies" (fun () ->
      Kitten.store_addr (Helpers.ctx s 1) 0x3000)

let test_wild_host_write_covirt () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let crash =
    crash_of (Helpers.pisces s) (fun () ->
        Kitten.store_addr (Helpers.ctx s 1) 0x3000)
  in
  Alcotest.(check int) "right enclave" s.Helpers.enclave.Enclave.id
    crash.Pisces.enclave_id;
  Alcotest.(check bool) "node alive" true (Machine.panicked s.Helpers.machine = None);
  Alcotest.(check bool) "resources reclaimed" true
    (match s.Helpers.enclave.Enclave.state with
    | Enclave.Crashed _ -> true
    | _ -> false)

(* --- 2. Wild write into a sibling enclave --- *)

let test_cross_enclave_write_native () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let victim, victim_kitten = Helpers.second_enclave s () in
  let target =
    match Region.Set.to_list victim.Enclave.memory with
    | r :: _ -> r.Region.base + mib
    | [] -> Alcotest.fail "victim has no memory"
  in
  Kitten.store_addr (Helpers.ctx s 1) target;
  (* the victim is silently corrupted and eventually panics *)
  (match Kitten.health victim_kitten with
  | `Corrupted _ -> ()
  | `Ok -> Alcotest.fail "victim not corrupted");
  match Kitten.assert_healthy victim_kitten with
  | exception Kitten.Kernel_panic _ -> ()
  | () -> Alcotest.fail "victim survived"

let test_cross_enclave_write_covirt () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let victim, victim_kitten = Helpers.second_enclave s () in
  let target =
    match Region.Set.to_list victim.Enclave.memory with
    | r :: _ -> r.Region.base + mib
    | [] -> Alcotest.fail "victim has no memory"
  in
  let _crash =
    crash_of (Helpers.pisces s) (fun () ->
        Kitten.store_addr (Helpers.ctx s 1) target)
  in
  Alcotest.(check bool) "victim untouched" true
    (Kitten.health victim_kitten = `Ok);
  Alcotest.(check bool) "victim still running" true (Enclave.is_running victim)

(* --- 3. Memory-map desync (phantom region) --- *)

let test_phantom_region_covirt () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  (* the kernel is convinced it owns memory it was never assigned *)
  let phantom = Region.make ~base:(1536 * mib) ~len:(4 * mib) in
  Kitten.inject_phantom_region s.Helpers.kitten phantom;
  let crash =
    crash_of (Helpers.pisces s) (fun () ->
        Kitten.touch_believed_memory (Helpers.ctx s 1) phantom.Region.base)
  in
  Alcotest.(check bool) "EPT violation reported" true
    (let reports =
       Covirt.reports s.Helpers.controller
         ~enclave_id:s.Helpers.enclave.Enclave.id
     in
     List.exists
       (fun r -> r.Covirt.Fault_report.kind = Covirt.Fault_report.Memory_violation)
       reports);
  ignore crash

(* --- 4. The war story: stale XEMEM mapping after buggy cleanup --- *)

let war_story_setup ~config () =
  let s = Helpers.boot_stack ~config ~cores:[ 1 ] () in
  let exporter, exporter_kitten = Helpers.second_enclave s () in
  let base =
    match Kitten.kalloc exporter_kitten ~bytes:(4 * mib) with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  (match
     Covirt_xemem.Xemem.export xemem
       ~exporter:(Covirt_xemem.Name_service.Enclave_export exporter.Enclave.id)
       ~name:"stale"
       ~pages:[ Region.make ~base ~len:(4 * mib) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:"stale" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* the attacher uses the segment (fills its TLB) *)
  Kitten.store_addr (Helpers.ctx s 1) base;
  (* host reclaims the export, but the cleanup bug leaves the
     attacher's kernel in the dark *)
  (match
     Covirt_xemem.Xemem.reclaim_export xemem ~name:"stale"
       ~simulate_cleanup_bug:true ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the exporter's enclave frees the memory back to the host, which
     hands it to a NEW enclave *)
  (match
     Pisces.remove_memory (Helpers.pisces s) exporter
       (Region.make ~base ~len:(4 * mib))
   with
  | Ok () -> ()
  | Error _ ->
      (* the region may not be removable piecemeal on all layouts;
         releasing the whole enclave also returns the frames *)
      Pisces.destroy (Helpers.pisces s) exporter);
  let victim, _ =
    Covirt_hobbes.Hobbes.launch_enclave s.Helpers.hobbes ~name:"newcomer"
      ~cores:[ 2 ] ~mem:[ (1, 64 * mib) ] ()
    |> Result.get_ok
  in
  Alcotest.(check bool) "attacker still believes the stale mapping" true
    (Memmap.believes_usable (Kitten.memmap s.Helpers.kitten) base);
  (s, base, victim)

let test_stale_xemem_native () =
  let s, base, _victim = war_story_setup ~config:Covirt.Config.native () in
  (* natively the access sails through; if the frames were re-assigned
     the rightful owner gets corrupted; at minimum the wild access is
     invisible to anyone *)
  Kitten.store_addr (Helpers.ctx s 1) base;
  Alcotest.(check bool) "access went through undetected" true
    (Machine.panicked s.Helpers.machine = None)

let test_stale_xemem_covirt () =
  let s, base, victim = war_story_setup ~config:Covirt.Config.mem_ipi () in
  (* Covirt unmapped the EPT during the host-side reclaim and flushed
     the attacher's TLBs; the stale access is caught immediately. *)
  let crash =
    crash_of (Helpers.pisces s) (fun () ->
        Kitten.store_addr (Helpers.ctx s 1) base)
  in
  Alcotest.(check int) "attacker terminated" s.Helpers.enclave.Enclave.id
    crash.Pisces.enclave_id;
  Alcotest.(check bool) "new owner unharmed" true (Enclave.is_running victim);
  Alcotest.(check bool) "no corruption anywhere" true
    (Machine.is_corrupted s.Helpers.machine ~enclave:victim.Enclave.id = None)

(* --- 5. Errant IPIs --- *)

let test_errant_ipi_native () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let victim, victim_kitten = Helpers.second_enclave s () in
  (* vector 8 = double fault, aimed at the victim's core *)
  Kitten.send_ipi (Helpers.ctx s 1) ~dest:(Enclave.bsp victim) ~vector:8;
  match Kitten.health victim_kitten with
  | `Corrupted _ -> ()
  | `Ok -> Alcotest.fail "victim survived exception-class IPI"

let test_errant_ipi_covirt_dropped () =
  let s = Helpers.boot_stack ~config:Covirt.Config.ipi () in
  let victim, victim_kitten = Helpers.second_enclave s () in
  Kitten.send_ipi (Helpers.ctx s 1) ~dest:(Enclave.bsp victim) ~vector:8;
  (* dropped, not fatal: the sender keeps running, the victim is clean *)
  Alcotest.(check bool) "victim clean" true (Kitten.health victim_kitten = `Ok);
  Alcotest.(check bool) "sender still running" true
    (Enclave.is_running s.Helpers.enclave);
  Alcotest.(check int) "drop counted" 1
    (Covirt.dropped_ipis s.Helpers.controller
       ~enclave_id:s.Helpers.enclave.Enclave.id);
  let reports =
    Covirt.reports s.Helpers.controller ~enclave_id:s.Helpers.enclave.Enclave.id
  in
  Alcotest.(check bool) "errant-ipi report" true
    (List.exists
       (fun r -> r.Covirt.Fault_report.kind = Covirt.Fault_report.Errant_ipi)
       reports)

let test_granted_ipi_passes () =
  let s = Helpers.boot_stack ~config:Covirt.Config.ipi () in
  let peer, peer_kitten = Helpers.second_enclave s () in
  (match
     Pisces.grant_ipi_vector (Helpers.pisces s) s.Helpers.enclave ~vector:0x44
       ~peer_core:(Enclave.bsp peer)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let hits = ref 0 in
  Kitten.register_irq peer_kitten ~vector:0x44 (fun _ _ -> incr hits);
  Kitten.send_ipi (Helpers.ctx s 1) ~dest:(Enclave.bsp peer) ~vector:0x44;
  Alcotest.(check int) "delivered" 1 !hits;
  Alcotest.(check int) "nothing dropped" 0
    (Covirt.dropped_ipis s.Helpers.controller
       ~enclave_id:s.Helpers.enclave.Enclave.id)

let test_revoked_ipi_dropped () =
  let s = Helpers.boot_stack ~config:Covirt.Config.ipi () in
  let peer, peer_kitten = Helpers.second_enclave s () in
  let p = Helpers.pisces s in
  (match
     Pisces.grant_ipi_vector p s.Helpers.enclave ~vector:0x44
       ~peer_core:(Enclave.bsp peer)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Pisces.revoke_ipi_vector p s.Helpers.enclave ~vector:0x44 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let hits = ref 0 in
  Kitten.register_irq peer_kitten ~vector:0x44 (fun _ _ -> incr hits);
  Kitten.send_ipi (Helpers.ctx s 1) ~dest:(Enclave.bsp peer) ~vector:0x44;
  Alcotest.(check int) "dropped after revoke" 0 !hits

(* --- 6. MSR / I/O / abort class --- *)

let test_msr_native_vs_covirt () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  Helpers.expect_panic "native" (fun () -> Kitten.wrmsr_sensitive (Helpers.ctx s 1));
  let s2 = Helpers.boot_stack ~config:Covirt.Config.full () in
  let crash =
    crash_of (Helpers.pisces s2) (fun () ->
        Kitten.wrmsr_sensitive (Helpers.ctx s2 1))
  in
  ignore crash;
  Alcotest.(check bool) "node alive" true (Machine.panicked s2.Helpers.machine = None)

let test_reset_port_native_vs_covirt () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  Helpers.expect_panic "native reset" (fun () ->
      Kitten.out_reset_port (Helpers.ctx s 1));
  let s2 = Helpers.boot_stack ~config:Covirt.Config.full () in
  let _crash =
    crash_of (Helpers.pisces s2) (fun () ->
        Kitten.out_reset_port (Helpers.ctx s2 1))
  in
  Alcotest.(check bool) "node alive" true (Machine.panicked s2.Helpers.machine = None)

let test_double_fault_native_vs_covirt () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  Helpers.expect_panic "native triple fault" (fun () ->
      Kitten.trigger_double_fault (Helpers.ctx s 1));
  (* abort handling needs only the base hypervisor, no features *)
  let s2 = Helpers.boot_stack ~config:Covirt.Config.none () in
  let crash =
    crash_of (Helpers.pisces s2) (fun () ->
        Kitten.trigger_double_fault (Helpers.ctx s2 1))
  in
  Alcotest.(check bool) "abort named" true
    (String.length crash.Pisces.reason > 0);
  Alcotest.(check bool) "node alive" true (Machine.panicked s2.Helpers.machine = None)

(* --- 7. Feature modularity: a disabled feature does not protect --- *)

let test_ipi_only_config_does_not_stop_memory_faults () =
  let s = Helpers.boot_stack ~config:Covirt.Config.ipi () in
  (* memory protection off: the wild write reaches host memory and the
     node panics, hypervisor or not *)
  Helpers.expect_panic "ipi-only cannot stop memory faults" (fun () ->
      Kitten.store_addr (Helpers.ctx s 1) 0x3000)

let test_mem_only_config_does_not_stop_errant_ipis () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let victim, victim_kitten = Helpers.second_enclave s () in
  Kitten.send_ipi (Helpers.ctx s 1) ~dest:(Enclave.bsp victim) ~vector:8;
  match Kitten.health victim_kitten with
  | `Corrupted _ -> ()
  | `Ok -> Alcotest.fail "mem-only config unexpectedly stopped the IPI"

(* --- 8. Hot-remove then touch --- *)

let test_hot_remove_then_touch () =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
  let p = Helpers.pisces s in
  let region =
    match Pisces.add_memory p s.Helpers.enclave ~zone:1 ~len:(16 * mib) with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let ctx = Helpers.ctx s 1 in
  (* use it (fill the TLB), then give it back *)
  Kitten.store_addr ctx region.Region.base;
  (match Pisces.remove_memory p s.Helpers.enclave region with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a buggy straggler pointer dereference is contained, because the
     unmap protocol flushed the stale TLB entry *)
  let _crash =
    crash_of p (fun () -> Kitten.store_addr ctx region.Region.base)
  in
  ()

let () =
  Alcotest.run "faults"
    [
      ( "memory",
        [
          Alcotest.test_case "host write, native" `Quick test_wild_host_write_native;
          Alcotest.test_case "host write, covirt" `Quick test_wild_host_write_covirt;
          Alcotest.test_case "cross-enclave, native" `Quick
            test_cross_enclave_write_native;
          Alcotest.test_case "cross-enclave, covirt" `Quick
            test_cross_enclave_write_covirt;
          Alcotest.test_case "phantom region" `Quick test_phantom_region_covirt;
          Alcotest.test_case "hot-remove then touch" `Quick
            test_hot_remove_then_touch;
        ] );
      ( "war-story",
        [
          Alcotest.test_case "stale xemem, native" `Quick test_stale_xemem_native;
          Alcotest.test_case "stale xemem, covirt" `Quick test_stale_xemem_covirt;
        ] );
      ( "ipi",
        [
          Alcotest.test_case "errant, native" `Quick test_errant_ipi_native;
          Alcotest.test_case "errant, covirt dropped" `Quick
            test_errant_ipi_covirt_dropped;
          Alcotest.test_case "granted passes" `Quick test_granted_ipi_passes;
          Alcotest.test_case "revoked dropped" `Quick test_revoked_ipi_dropped;
        ] );
      ( "other-hw",
        [
          Alcotest.test_case "sensitive MSR" `Quick test_msr_native_vs_covirt;
          Alcotest.test_case "reset port" `Quick test_reset_port_native_vs_covirt;
          Alcotest.test_case "double fault" `Quick test_double_fault_native_vs_covirt;
        ] );
      ( "modularity",
        [
          Alcotest.test_case "ipi-only vs memory fault" `Quick
            test_ipi_only_config_does_not_stop_memory_faults;
          Alcotest.test_case "mem-only vs errant IPI" `Quick
            test_mem_only_config_does_not_stop_errant_ipis;
        ] );
    ]
