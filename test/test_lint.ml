(* covirt.lint: every check fires on its seeded fixture with exact
   counts and line numbers; suppressions are accounted, not dropped;
   string/comment tokens never masquerade as code (the regex linter's
   false-positive surface); the tree engine reports mli coverage,
   exit codes and the layer DOT; and the live tree itself is clean. *)

open Covirt_lint

(* --- plumbing -------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Analyze a fixture file under a virtual repo-relative path, so the
   path-scoped checks see the layer the fixture impersonates. *)
let analyze ?(path = "lib/hw/fx.ml") name =
  Engine.analyze_string ~path
    ~text:(read_file (Filename.concat "lint_fixtures" name))

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let lines fs = List.sort compare (List.map (fun f -> f.Finding.line) fs)
let with_check c fs = List.filter (fun f -> f.Finding.check = c) fs

let check_only ~msg c fs =
  Alcotest.(check (list string))
    (msg ^ ": all findings carry the expected check id")
    (List.map (fun _ -> c) fs)
    (List.map (fun f -> f.Finding.check) fs)

let no_noise ?(suppressed = 0) ~msg (_, supp, parse_error) =
  Alcotest.(check int) (msg ^ ": suppressed count") suppressed
    (List.length supp);
  Alcotest.(check bool) (msg ^ ": no parse error") true (parse_error = None)

(* --- one fixture per check ------------------------------------------- *)

let test_no_print () =
  let ((fs, _, _) as r) = analyze "fx_no_print.ml" in
  no_noise ~msg:"no-print" r;
  check_only ~msg:"no-print" "no-print" fs;
  Alcotest.(check (list int)) "one finding per print site" [ 1; 2; 3 ]
    (lines fs)

let test_guarded_obs () =
  let ((fs, _, _) as r) = analyze "fx_obs_unguarded.ml" in
  no_noise ~msg:"guarded-obs" r;
  Alcotest.(check (list int))
    "unguarded Metrics.add and Span.instant both flagged" [ 2; 3 ]
    (lines (with_check "guarded-obs" fs));
  Alcotest.(check (list int))
    "the same sites breach the zero-cost tap contract" [ 2; 3 ]
    (lines (with_check "tap-zero-cost" fs));
  Alcotest.(check int) "nothing else fires" 4 (List.length fs)

let test_tap_impure_guard () =
  let ((fs, _, _) as r) = analyze ~path:"lib/core/fx.ml" "fx_tap_impure.ml" in
  no_noise ~msg:"tap-impure" r;
  check_only ~msg:"tap-impure" "tap-zero-cost" fs;
  Alcotest.(check (list int))
    "guard with a call is impure; the flag deref alone is not enough" [ 5 ]
    (lines fs);
  match fs with
  | [ f ] ->
      Alcotest.(check bool) "message names the pure-flag contract" true
        (contains ~affix:"pure flag" f.Finding.message)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_sanitize_and_tap_refs () =
  let ((fs, _, _) as r) =
    analyze ~path:"lib/resilience/fx.ml" "fx_sanitize_tap.ml"
  in
  no_noise ~msg:"sanitize-tap" r;
  check_only ~msg:"sanitize-tap" "tap-zero-cost" fs;
  Alcotest.(check (list int))
    "unguarded Sanitize.access and !tap ref flagged; guarded tap is not"
    [ 1; 4 ] (lines fs)

let test_fleet_monopoly_spawn () =
  let ((fs, _, _) as r) =
    analyze ~path:"lib/harness/fx.ml" "fx_fleet_spawn.ml"
  in
  no_noise ~msg:"fleet-spawn" r;
  check_only ~msg:"fleet-spawn" "fleet-monopoly" fs;
  Alcotest.(check (list int)) "Domain.spawn outside lib/fleet" [ 1 ] (lines fs)

let test_fleet_monopoly_hw () =
  let ((fs, _, _) as r) = analyze ~path:"lib/fleet/fx.ml" "fx_fleet_hw.ml" in
  no_noise ~msg:"fleet-hw" r;
  check_only ~msg:"fleet-hw" "fleet-monopoly" fs;
  Alcotest.(check (list int)) "Covirt_hw reference inside lib/fleet" [ 1 ]
    (lines fs)

let test_replay_confinement () =
  let ((fs, _, _) as r) = analyze ~path:"lib/core/fx.ml" "fx_replay_leak.ml" in
  no_noise ~msg:"replay" r;
  check_only ~msg:"replay" "replay-confinement" fs;
  Alcotest.(check (list int))
    "Covirt_replay reference and the magic literal both flagged" [ 1; 3 ]
    (lines fs)

let test_warm_alloc () =
  let ((fs, _, _) as r) = analyze "fx_warm_alloc.ml" in
  no_noise ~msg:"warm-alloc" r;
  check_only ~msg:"warm-alloc" "warm-alloc" fs;
  Alcotest.(check (list int))
    "closure/tuple/cons/array/Some/record/List/Printf each flagged once; \
     the exception-branch cold fill and the !flag-guarded Some are exempt"
    [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (lines fs)

let test_warm_marker_lost () =
  let fs, supp, pe =
    Engine.analyze_string ~path:"lib/hw/tlb.ml" ~text:"let translate t g = g\n"
  in
  Alcotest.(check bool) "parses" true (pe = None);
  Alcotest.(check int) "no suppressions" 0 (List.length supp);
  check_only ~msg:"warm-marker" "warm-alloc" fs;
  Alcotest.(check int) "a designated hot-path file without markers fails" 1
    (List.length fs)

let test_layer_deps () =
  let ((fs, _, _) as r) = analyze "fx_layer_breach.ml" in
  no_noise ~msg:"layer" r;
  check_only ~msg:"layer" "layer-deps" fs;
  Alcotest.(check (list int))
    "tap-surface breach and undeclared edge both flagged" [ 1; 2 ] (lines fs);
  let msgs = List.map (fun f -> f.Finding.message) fs in
  Alcotest.(check bool) "one message cites the tap surface" true
    (List.exists (contains ~affix:"tap surface") msgs);
  Alcotest.(check bool) "one message cites the rule table" true
    (List.exists (contains ~affix:"rule table") msgs)

let test_determinism () =
  let ((fs, _, _) as r) =
    analyze ~path:"lib/fleet/fx.ml" "fx_determinism.ml"
  in
  no_noise ~msg:"determinism" r;
  check_only ~msg:"determinism" "determinism" fs;
  Alcotest.(check (list int))
    "self_init, gettimeofday and merge-layer Hashtbl.fold all flagged"
    [ 1; 2; 3 ] (lines fs)

(* --- suppressions, clean module, parse errors ------------------------ *)

let test_suppression_accounting () =
  let fs, supp, pe = analyze "fx_suppressed.ml" in
  Alcotest.(check bool) "parses" true (pe = None);
  Alcotest.(check (list int)) "the uncovered print still fires" [ 4 ]
    (lines fs);
  Alcotest.(check (list int)) "the covered print is suppressed, not lost"
    [ 2 ] (lines supp);
  check_only ~msg:"suppressed" "no-print" supp

let test_clean_module () =
  let fs, supp, pe = analyze "fx_clean.ml" in
  Alcotest.(check bool) "parses" true (pe = None);
  Alcotest.(check int) "guarded emission is clean" 0 (List.length fs);
  Alcotest.(check int) "nothing suppressed" 0 (List.length supp)

let test_parse_error () =
  let fs, _, pe = analyze "fx_parse_error.ml" in
  Alcotest.(check int) "no findings from an unparseable file" 0
    (List.length fs);
  match pe with
  | Some msg ->
      Alcotest.(check bool) "error message is non-empty" true
        (String.length msg > 0)
  | None -> Alcotest.fail "expected a parse error"

(* --- the regex linter's false-positive surface (satellite) ----------- *)

let test_tokens_in_strings_inert () =
  let ((fs, _, _) as r) = analyze "fx_fp_strings.ml" in
  no_noise ~msg:"fp-strings" r;
  Alcotest.(check int)
    "banned tokens inside string literals (including a fake warm-end) \
     produce no findings"
    0 (List.length fs)

let test_tokens_in_comments_inert () =
  let ((fs, _, _) as r) = analyze "fx_fp_comments.ml" in
  no_noise ~msg:"fp-comments" r;
  Alcotest.(check int)
    "banned tokens and the magic literal inside comments produce no findings"
    0 (List.length fs)

let test_comment_scanner () =
  let comments =
    Source.scan_comments
      "let a = \"(* not a comment *)\"\n(* one (* nested *) comment\nspanning *)\nlet c = '\"'\nlet q = {x|(* inert |x}\n(* last *)\n"
  in
  Alcotest.(check int) "delimiters in strings/quoted strings are inert" 2
    (List.length comments);
  match comments with
  | [ first; last ] ->
      Alcotest.(check int) "nested comment starts on line 2" 2 first.Source.c_line;
      Alcotest.(check int) "and ends on line 3" 3 first.Source.c_end_line;
      Alcotest.(check int) "trailing comment on line 6" 6 last.Source.c_line
  | _ -> Alcotest.fail "unexpected comment shapes"

let test_catalogue () =
  Alcotest.(check int) "nine checks registered" 9 (List.length Checks.catalogue);
  let ids = List.map fst Checks.catalogue in
  Alcotest.(check int) "check ids are unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "fixture-backed id %s is in the catalogue" id)
        true (List.mem id ids))
    [ "mli-presence"; "no-print"; "guarded-obs"; "tap-zero-cost";
      "fleet-monopoly"; "replay-confinement"; "warm-alloc"; "layer-deps";
      "determinism" ]

(* --- tree-level engine behaviour ------------------------------------- *)

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else Sys.remove p

let with_tree files f =
  let dir = Filename.temp_file "covirt_lint_fx" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      List.iter
        (fun (rel, text) ->
          let rec ensure d = function
            | [] | [ _ ] -> ()
            | seg :: rest ->
                let d = Filename.concat d seg in
                if not (Sys.file_exists d) then Unix.mkdir d 0o700;
                ensure d rest
          in
          ensure dir (String.split_on_char '/' rel);
          let oc = open_out_bin (Filename.concat dir rel) in
          output_string oc text;
          close_out oc)
        files;
      f dir)

let test_mli_presence_and_exit_codes () =
  with_tree
    [ ("lib/widget/gear.ml", "let x = 1\n");
      ("lib/widget/gear.mli", "val x : int\n") ]
    (fun root ->
      let r = Engine.run ~root in
      Alcotest.(check int) "covered module: clean tree exits 0" 0
        (Engine.exit_code r));
  with_tree
    [ ("lib/widget/gear.ml", "let x = 1\n") ]
    (fun root ->
      let r = Engine.run ~root in
      check_only ~msg:"mli" "mli-presence" r.Engine.findings;
      Alcotest.(check int) "a bare .ml yields one mli-presence finding" 1
        (List.length r.Engine.findings);
      Alcotest.(check int) "findings exit 1" 1 (Engine.exit_code r);
      let json = Engine.to_json r in
      Alcotest.(check bool) "json carries the finding" true
        (contains ~affix:"mli-presence" json);
      Alcotest.(check bool) "json carries the exit code" true
        (contains ~affix:"\"exit_code\": 1" json));
  with_tree
    [ ("lib/widget/bad.ml", "let broken = (\n");
      ("lib/widget/bad.mli", "val broken : int\n") ]
    (fun root ->
      let r = Engine.run ~root in
      Alcotest.(check int) "one parse error recorded" 1
        (List.length r.Engine.parse_errors);
      Alcotest.(check int) "tool error outranks findings: exit 2" 2
        (Engine.exit_code r));
  Alcotest.check_raises "a root without lib/ is a tool error"
    (Engine.No_tree "no lib/ under /nonexistent-covirt-root") (fun () ->
      ignore (Engine.run ~root:"/nonexistent-covirt-root"))

let test_layer_graph_dot () =
  with_tree
    [ ("lib/hw/gear.ml", "let draw = Covirt_sim.Rng.draw\n");
      ("lib/hw/gear.mli", "val draw : int\n") ]
    (fun root ->
      let r = Engine.run ~root in
      Alcotest.(check int) "an allowed edge is not a finding" 0
        (Engine.exit_code r);
      let dot = Engine.dot r in
      Alcotest.(check bool) "DOT records the hw -> sim edge" true
        (contains ~affix:"\"hw\" -> \"sim\"" dot);
      Alcotest.(check bool) "edge labelled with the referenced submodule" true
        (contains ~affix:"Rng" dot))

(* --- the live tree polices itself ------------------------------------ *)

let test_live_tree_clean () =
  (* cwd is _build/default/test; the dune deps materialize ../lib and
     ../bin, the same sources [dune build @lint] gates. *)
  let r = Engine.run ~root:".." in
  Alcotest.(check (list string)) "no parse errors in the live tree" []
    (List.map fst r.Engine.parse_errors);
  Alcotest.(check (list string)) "zero unsuppressed findings" []
    (List.map
       (fun f -> Format.asprintf "%a" Finding.pp f)
       r.Engine.findings);
  Alcotest.(check bool) "a real tree was scanned" true (r.Engine.files > 100);
  Alcotest.(check (list string))
    "exactly the documented suppression survives (ept pt-slot cold fill)"
    [ "lib/hw/ept.ml:warm-alloc" ]
    (List.map
       (fun f -> f.Finding.file ^ ":" ^ f.Finding.check)
       r.Engine.suppressed)

let () =
  Alcotest.run "lint"
    [
      ( "checks",
        [
          Alcotest.test_case "no-print fires per site" `Quick test_no_print;
          Alcotest.test_case "unguarded obs emissions" `Quick test_guarded_obs;
          Alcotest.test_case "impure tap guard" `Quick test_tap_impure_guard;
          Alcotest.test_case "sanitize and tap-ref sites" `Quick
            test_sanitize_and_tap_refs;
          Alcotest.test_case "Domain.spawn outside fleet" `Quick
            test_fleet_monopoly_spawn;
          Alcotest.test_case "fleet referencing hw" `Quick
            test_fleet_monopoly_hw;
          Alcotest.test_case "replay refs and magic literal" `Quick
            test_replay_confinement;
          Alcotest.test_case "warm-region allocation shapes" `Quick
            test_warm_alloc;
          Alcotest.test_case "lost warm markers" `Quick test_warm_marker_lost;
          Alcotest.test_case "layer rule table" `Quick test_layer_deps;
          Alcotest.test_case "determinism bans" `Quick test_determinism;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "suppressions counted, not lost" `Quick
            test_suppression_accounting;
          Alcotest.test_case "clean module" `Quick test_clean_module;
          Alcotest.test_case "parse error is typed" `Quick test_parse_error;
          Alcotest.test_case "tokens in strings are inert" `Quick
            test_tokens_in_strings_inert;
          Alcotest.test_case "tokens in comments are inert" `Quick
            test_tokens_in_comments_inert;
          Alcotest.test_case "comment scanner" `Quick test_comment_scanner;
          Alcotest.test_case "catalogue is closed over the checks" `Quick
            test_catalogue;
        ] );
      ( "engine",
        [
          Alcotest.test_case "mli presence and exit codes" `Quick
            test_mli_presence_and_exit_codes;
          Alcotest.test_case "layer graph DOT" `Quick test_layer_graph_dot;
          Alcotest.test_case "live tree is clean" `Quick test_live_tree_clean;
        ] );
    ]
