(* System-level property tests: after ANY random sequence of resource
   operations, the controller's virtualization state mirrors the host's
   authoritative view — the consistency invariant the whole design
   hangs on. *)

open Covirt_hw
open Covirt_pisces
open Covirt_test_util

let mib = Covirt_sim.Units.mib

type op =
  | Add_mem of int (* zone *)
  | Remove_last
  | Grant of int (* vector offset *)
  | Revoke_last
  | Attach_seg
  | Detach_last

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map (fun z -> Add_mem z) (int_range 0 1);
        return Remove_last;
        map (fun v -> Grant v) (int_range 0 20);
        return Revoke_last;
        return Attach_seg;
        return Detach_last;
      ])

(* Apply an op sequence to a freshly booted stack and check invariants
   after every step. *)
let run_sequence ops =
  let s = Helpers.boot_stack ~config:Covirt.Config.mem_ipi () in
  let p = Helpers.pisces s in
  let exporter, exporter_kitten = Helpers.second_enclave s () in
  let xemem = Covirt_hobbes.Hobbes.xemem s.Helpers.hobbes in
  (* one well-known exported segment to attach/detach *)
  let seg_name = "inv-seg" in
  (match Covirt_kitten.Kitten.kalloc exporter_kitten ~bytes:(4 * mib) with
  | Ok base ->
      Covirt_xemem.Xemem.export xemem
        ~exporter:(Covirt_xemem.Name_service.Enclave_export exporter.Enclave.id)
        ~name:seg_name
        ~pages:[ Region.make ~base ~len:(4 * mib) ]
      |> Result.get_ok |> ignore
  | Error e -> failwith e);
  let added = ref [] in
  let granted = ref [] in
  let attached = ref false in
  let apply = function
    | Add_mem zone -> (
        match Pisces.add_memory p s.Helpers.enclave ~zone ~len:(8 * mib) with
        | Ok region -> added := region :: !added
        | Error _ -> () (* out of memory is fine *))
    | Remove_last -> (
        match !added with
        | region :: rest -> (
            match Pisces.remove_memory p s.Helpers.enclave region with
            | Ok () -> added := rest
            | Error e -> failwith e)
        | [] -> ())
    | Grant v -> (
        let vector = 0x40 + v in
        if not (List.mem vector !granted) then
          match
            Pisces.grant_ipi_vector p s.Helpers.enclave ~vector
              ~peer_core:(Enclave.bsp exporter)
          with
          | Ok () -> granted := vector :: !granted
          | Error e -> failwith e)
    | Revoke_last -> (
        match !granted with
        | vector :: rest -> (
            match Pisces.revoke_ipi_vector p s.Helpers.enclave ~vector with
            | Ok () -> granted := rest
            | Error e -> failwith e)
        | [] -> ())
    | Attach_seg ->
        if not !attached then begin
          match Covirt_xemem.Xemem.attach xemem s.Helpers.enclave ~name:seg_name with
          | Ok _ -> attached := true
          | Error e -> failwith e
        end
    | Detach_last ->
        if !attached then begin
          match Covirt_xemem.Xemem.detach xemem s.Helpers.enclave ~name:seg_name with
          | Ok () -> attached := false
          | Error e -> failwith e
        end
  in
  let instance () =
    Option.get
      (Covirt.Controller.instance_for s.Helpers.controller
         ~enclave_id:s.Helpers.enclave.Enclave.id)
  in
  let invariants_hold () =
    let inst = instance () in
    let ept_ok =
      match inst.Covirt.Controller.ept_mgr with
      | None -> false
      | Some mgr ->
          (* the EPT's mapped set is exactly the enclave's accessible set *)
          Region.Set.equal
            (Ept.regions (Covirt.Ept_manager.ept mgr))
            (Enclave.accessible s.Helpers.enclave)
    in
    let whitelist_ok =
      let grants = Covirt.Whitelist.grants inst.Covirt.Controller.whitelist in
      List.for_all (fun v -> List.mem_assoc v grants) !granted
      && List.for_all (fun (v, _) -> List.mem v !granted) grants
    in
    let queues_drained =
      List.for_all
        (fun (_, hv) -> Covirt.Command.pending (Covirt.Hypervisor.queue hv) = 0)
        inst.Covirt.Controller.hypervisors
    in
    ept_ok && whitelist_ok && queues_drained
  in
  List.for_all (fun op -> apply op; invariants_hold ()) ops

let prop_controller_mirrors_host =
  Helpers.qtest ~count:60 "EPT/whitelist mirror the host view"
    QCheck2.Gen.(list_size (int_range 1 25) gen_op)
    run_sequence

(* After the sequence the enclave must still work and be protected. *)
let prop_still_functional =
  Helpers.qtest ~count:30 "enclave alive and protected after churn"
    QCheck2.Gen.(list_size (int_range 1 15) gen_op)
    (fun ops ->
      let s = Helpers.boot_stack ~config:Covirt.Config.mem () in
      let p = Helpers.pisces s in
      let added = ref [] in
      List.iter
        (fun op ->
          match op with
          | Add_mem zone -> (
              match Pisces.add_memory p s.Helpers.enclave ~zone ~len:(8 * mib) with
              | Ok r -> added := r :: !added
              | Error _ -> ())
          | Remove_last -> (
              match !added with
              | r :: rest ->
                  (match Pisces.remove_memory p s.Helpers.enclave r with
                  | Ok () -> added := rest
                  | Error _ -> ())
              | [] -> ())
          | Grant _ | Revoke_last | Attach_seg | Detach_last -> ())
        ops;
      (* a legitimate access works *)
      let ctx = Helpers.ctx s 1 in
      (match Covirt_kitten.Kitten.kalloc s.Helpers.kitten ~bytes:(1 * mib) with
      | Ok addr -> Covirt_kitten.Kitten.store_addr ctx addr
      | Error _ -> ());
      (* a wild access is still contained *)
      match Pisces.run_guarded p (fun () -> Covirt_kitten.Kitten.store_addr ctx 0x5000) with
      | Error _ -> true
      | Ok () -> false)

let () =
  Alcotest.run "invariants"
    [
      ( "controller",
        [ prop_controller_mirrors_host; prop_still_functional ] );
    ]
