(* covirt.replay: the codec, the replay contract, the minimizer and
   the fuzzer's fleet determinism.

   The replay contract under test: a trace is the complete set of
   nondeterministic inputs of a run, so record -> replay -> re-record
   yields byte-identical traces; a mutated trace still replays to a
   fixed point (replay of the re-capture equals the re-capture); and
   recording armed never perturbs the run it observes (the golden
   translation capture stays byte-identical). *)

open Covirt_replay

let mib = Covirt_sim.Units.mib

(* --- codec ----------------------------------------------------------- *)

let all_events =
  [
    Trace.Exit
      {
        slot = 0;
        cpu = 1;
        enclave = 2;
        tsc = 123456;
        reason = Trace.X_ept { gpa = 0x4000_0040; access = 1; not_mapped = true };
      };
    Trace.Exit
      {
        slot = 0;
        cpu = 1;
        enclave = 2;
        tsc = 123500;
        reason = Trace.X_icr { dest = 3; vector = 0xd1; kind = 0 };
      };
    Trace.Exit
      {
        slot = 1;
        cpu = 3;
        enclave = 1;
        tsc = 9;
        reason = Trace.X_msr { msr = 0x1b; write = true; value = -1L };
      };
    Trace.Exit
      {
        slot = 1;
        cpu = 3;
        enclave = 1;
        tsc = 10;
        reason = Trace.X_io { port = 0x3f8; write = false; value = 0xff };
      };
    Trace.Exit
      { slot = 1; cpu = 3; enclave = 1; tsc = 11; reason = Trace.X_cpuid };
    Trace.Exit
      { slot = 1; cpu = 3; enclave = 1; tsc = 12; reason = Trace.X_xsetbv };
    Trace.Exit { slot = 1; cpu = 3; enclave = 1; tsc = 13; reason = Trace.X_hlt };
    Trace.Exit
      {
        slot = 2;
        cpu = 0;
        enclave = 0;
        tsc = 14;
        reason = Trace.X_intr { vector = 32 };
      };
    Trace.Exit { slot = 2; cpu = 0; enclave = 0; tsc = 15; reason = Trace.X_nmi };
    Trace.Exit
      {
        slot = 2;
        cpu = 0;
        enclave = 0;
        tsc = 16;
        reason = Trace.X_abort { what = "triple fault" };
      };
    Trace.Fault { slot = 0; fault = Trace.F_wild 0x7fff_ffff };
    Trace.Fault { slot = 0; fault = Trace.F_phantom 42 };
    Trace.Fault { slot = 1; fault = Trace.F_ipi { dest = 5; vector = 0xd1 } };
    Trace.Fault { slot = 1; fault = Trace.F_msr };
    Trace.Fault { slot = 1; fault = Trace.F_port };
    Trace.Fault { slot = 2; fault = Trace.F_double };
    Trace.Fault { slot = 2; fault = Trace.F_wedge { cycles = 1_000_000 } };
    Trace.Inject_exit
      {
        slot = 1;
        reason = Trace.X_ept { gpa = 0; access = 0; not_mapped = false };
      };
    Trace.Corrupt { slot = 0; cls = Trace.Cross_owner };
    Trace.Corrupt { slot = 1; cls = Trace.Free_map };
    Trace.Corrupt { slot = 2; cls = Trace.Stale_grant };
    Trace.Corrupt { slot = 3; cls = Trace.Freed_access };
    Trace.Xemem_op { slot = 0; attach = true };
    Trace.Xemem_op { slot = 1; attach = false };
    Trace.Spawn { slot = 2; zone = 0 };
    Trace.Spawn { slot = 3; zone = 1 };
  ]

let full_trace =
  Trace.make ~schedule_json:{|{"seed":7,"entries":[]}|} ~dropped:3
    ~scenario:(Trace.Trial_batch { config = "mem+ipi"; seed = 99; trials = 4 })
    all_events

let test_codec_round_trip () =
  let check trace =
    match Trace.decode (Trace.encode trace) with
    | Ok t ->
        Alcotest.(check bool) "decode inverts encode" true (Trace.equal t trace)
    | Error e -> Alcotest.failf "decode failed: %s" e
  in
  check full_trace;
  check
    (Trace.make
       ~scenario:(Trace.Soak_shard { seed = 5; lo = 0; hi = 40; sanitize = true })
       []);
  check (Trace.make ~scenario:(Trace.Trial_batch { config = "full"; seed = 0; trials = 0 }) [])

let test_codec_rejects_malformed () =
  let bytes = Trace.encode full_trace in
  let reject what s =
    match Trace.decode s with
    | Ok _ -> Alcotest.failf "decode accepted %s" what
    | Error _ -> ()
  in
  reject "empty input" "";
  reject "bad magic" ("XVRT" ^ String.sub bytes 4 (String.length bytes - 4));
  reject "truncated" (String.sub bytes 0 (String.length bytes - 3));
  reject "trailing garbage" (bytes ^ "\x00");
  (* Flip the version varint (byte 4) to an unknown version. *)
  let b = Bytes.of_string bytes in
  Bytes.set b 4 '\x7f';
  reject "unknown version" (Bytes.to_string b)

let test_codec_fuzz_total () =
  (* decode must be total on arbitrary bytes: Error, never an
     exception. *)
  let rng = Covirt_sim.Rng.create ~seed:2026 in
  for _ = 1 to 500 do
    let len = Covirt_sim.Rng.int rng ~bound:64 in
    let s =
      String.init len (fun _ -> Char.chr (Covirt_sim.Rng.int rng ~bound:256))
    in
    match Trace.decode ("CVRT" ^ s) with Ok _ | Error _ -> ()
  done

let event_gen =
  let open QCheck.Gen in
  let exit_payload =
    oneof
      [
        map3
          (fun gpa access not_mapped -> Trace.X_ept { gpa; access; not_mapped })
          (int_bound 0xffff_ffff) (int_bound 2) bool;
        map3
          (fun dest vector kind -> Trace.X_icr { dest; vector; kind })
          (int_bound 7) (int_bound 255) (int_bound 3);
        map3
          (fun msr write value -> Trace.X_msr { msr; write; value })
          (int_bound 0xffff) bool (map Int64.of_int int);
        return Trace.X_cpuid;
        return Trace.X_hlt;
        map (fun vector -> Trace.X_intr { vector }) (int_bound 255);
        map (fun what -> Trace.X_abort { what }) (string_size (int_bound 12));
      ]
  in
  let fault_payload =
    oneof
      [
        map (fun a -> Trace.F_wild a) (int_bound 0xffff_ffff);
        map (fun a -> Trace.F_phantom a) (int_bound 0xffff_ffff);
        map2
          (fun dest vector -> Trace.F_ipi { dest; vector })
          (int_bound 7) (int_bound 255);
        return Trace.F_msr;
        return Trace.F_double;
        map (fun cycles -> Trace.F_wedge { cycles }) (int_bound 10_000_000);
      ]
  in
  let slot = int_bound 7 in
  oneof
    [
      (fun st ->
        let s = slot st in
        Trace.Exit
          {
            slot = s;
            cpu = int_bound 5 st;
            enclave = int_bound 3 st;
            tsc = int_bound 1_000_000 st;
            reason = exit_payload st;
          });
      map2 (fun slot fault -> Trace.Fault { slot; fault }) slot fault_payload;
      map2 (fun slot reason -> Trace.Inject_exit { slot; reason }) slot
        exit_payload;
      map2
        (fun slot cls -> Trace.Corrupt { slot; cls })
        slot
        (oneofl Trace.corruptions);
      map2 (fun slot attach -> Trace.Xemem_op { slot; attach }) slot bool;
      map2 (fun slot zone -> Trace.Spawn { slot; zone }) slot (int_bound 1);
    ]

let qcheck_codec =
  QCheck.Test.make ~count:200 ~name:"encode/decode round-trips any event list"
    (QCheck.make QCheck.Gen.(list_size (int_bound 40) event_gen))
    (fun events ->
      let t =
        Trace.make
          ~scenario:(Trace.Trial_batch { config = "full"; seed = 1; trials = 8 })
          events
      in
      match Trace.decode (Trace.encode t) with
      | Ok t' -> Trace.equal t t'
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

(* --- record -> replay bit-identity ----------------------------------- *)

let with_sanitizer_restored f =
  let had = Covirt_hw.Sanitize.requested () in
  Fun.protect
    ~finally:(fun () -> if not had then Covirt_hw.Sanitize.release ())
    f

let test_record_replay_round_trip () =
  with_sanitizer_restored @@ fun () ->
  let r = Scenario.record ~config:"full" ~seed:7 ~trials:2 () in
  Alcotest.(check int) "complete trace" 0 r.Scenario.trace.Trace.dropped;
  let v = Replayer.verify r.Scenario.trace in
  Alcotest.(check bool) "replay is a fixed point" true v.Replayer.replay_identical;
  Alcotest.(check bool)
    "re-capture equals the recording" true v.Replayer.matches_original

let qcheck_record_replay =
  QCheck.Test.make ~count:4
    ~name:"record -> replay -> re-record is byte-identical (any seed)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      with_sanitizer_restored @@ fun () ->
      let config =
        List.nth Fuzzer.fuzz_configs (seed mod List.length Fuzzer.fuzz_configs)
      in
      let r = Scenario.record ~config ~seed ~trials:2 () in
      let v = Replayer.verify r.Scenario.trace in
      v.Replayer.replay_identical && v.Replayer.matches_original)

let test_record_sharded_across_domains () =
  (* A fleet-sharded recording session: each shard records its own
     trial batch; the digests must not depend on the domain count. *)
  with_sanitizer_restored @@ fun () ->
  let digests domains =
    Covirt_fleet.Fleet.map ~domains ~seed:2026 ~shards:4
      (fun ~shard_seed ~index ->
        let config = List.nth Fuzzer.fuzz_configs (index mod 5) in
        let r = Scenario.record ~config ~seed:shard_seed ~trials:2 () in
        Trace.digest r.Scenario.trace)
  in
  let d1 = digests 1 in
  Alcotest.(check (array string)) "domains 2 = domains 1" d1 (digests 2);
  Alcotest.(check (array string)) "domains 7 = domains 1" d1 (digests 7)

let test_recording_is_zero_cost () =
  (* The golden guarantee: the full golden scenario set, run with the
     recorder armed, produces byte-identical output to the committed
     snapshot (same gate as test_golden.ml). *)
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let expected = read_file "golden/translation.expected" in
  Recorder.arm ();
  let actual =
    Fun.protect ~finally:Recorder.disarm Covirt_harness.Golden.capture
  in
  Alcotest.(check bool)
    "golden capture byte-identical with recorder armed" true
    (String.equal expected actual)

(* --- oracles --------------------------------------------------------- *)

let insert_corrupt ~slot cls events =
  let ev = Trace.Corrupt { slot; cls } in
  let rec insert = function
    | [] -> [ ev ]
    | e :: rest when Trace.is_input e && Trace.slot_of e = slot ->
        ev :: e :: rest
    | e :: rest -> e :: insert rest
  in
  insert events

let replay_with_corrupt ~config ~cls =
  with_sanitizer_restored @@ fun () ->
  let r = Scenario.record ~config ~seed:7 ~trials:2 () in
  let mutant =
    Trace.make ~scenario:r.Scenario.trace.Trace.scenario
      (insert_corrupt ~slot:1 cls r.Scenario.trace.Trace.events)
  in
  Scenario.replay mutant

let test_all_corruption_classes_detected () =
  List.iter
    (fun (config, cls) ->
      let rep = replay_with_corrupt ~config ~cls in
      Alcotest.(check bool)
        (Trace.corruption_name cls ^ " planted")
        true
        (List.mem cls rep.Scenario.planted);
      Alcotest.(check bool)
        (Trace.corruption_name cls ^ " detected under " ^ config)
        true
        (List.mem cls rep.Scenario.detected))
    [
      ("mem", Trace.Cross_owner);
      ("mem", Trace.Free_map);
      ("full", Trace.Stale_grant);
      ("none", Trace.Freed_access);
    ]

(* --- minimizer and the checked-in corpus ----------------------------- *)

let crashing_trace () =
  (* A known crash: a mutated IPI fault towards a core the 2x3 machine
     does not have escapes the injector as Invalid_argument.  The
     "none" config leaves ICR writes untrapped, so the bad destination
     reaches the machine instead of the whitelist; the fault is
     inserted ahead of the slot's recorded fault so a node panic
     cannot shadow it. *)
  with_sanitizer_restored @@ fun () ->
  let r = Scenario.record ~config:"none" ~seed:7 ~trials:2 () in
  let ev = Trace.Fault { slot = 1; fault = Trace.F_ipi { dest = 7; vector = 1 } } in
  let rec insert = function
    | [] -> [ ev ]
    | e :: rest when Trace.is_input e && Trace.slot_of e = 1 -> ev :: e :: rest
    | e :: rest -> e :: insert rest
  in
  Trace.make ~scenario:r.Scenario.trace.Trace.scenario
    (insert r.Scenario.trace.Trace.events)

let test_minimizer_shrinks_to_fixpoint () =
  with_sanitizer_restored @@ fun () ->
  let trace = crashing_trace () in
  let rep = Scenario.replay trace in
  Alcotest.(check bool) "mutant crashes" true (rep.Scenario.crashes <> []);
  let minimized, stats = Minimizer.minimize trace in
  Alcotest.(check bool)
    "minimization reduced the trace" true
    (stats.Minimizer.minimized_events <= stats.Minimizer.original_events);
  Alcotest.(check bool)
    "minimized trace still crashes" true
    ((Scenario.replay minimized).Scenario.crashes <> []);
  Alcotest.(check int)
    "single input suffices" 1
    (List.length (Trace.inputs minimized));
  let again, stats2 = Minimizer.minimize minimized in
  Alcotest.(check bool)
    "minimize is a fixpoint" true (Trace.equal minimized again);
  Alcotest.(check int)
    "fixpoint spends no reducing probes" stats2.Minimizer.minimized_events
    stats2.Minimizer.original_events

let corpus_dir = "traces"

let test_checked_in_corpus () =
  with_sanitizer_restored @@ fun () ->
  let traces =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
  in
  Alcotest.(check bool)
    "at least 3 minimized reproducers checked in" true
    (List.length traces >= 3);
  List.iter
    (fun f ->
      let path = Filename.concat corpus_dir f in
      match Trace.of_file ~path with
      | Error e -> Alcotest.failf "%s does not decode: %s" f e
      | Ok t ->
          let rep = Scenario.replay t in
          Alcotest.(check bool) (f ^ " reproduces its crash") true
            (rep.Scenario.crashes <> []);
          let minimized, _ = Minimizer.minimize t in
          Alcotest.(check bool)
            (f ^ " is already minimal") true (Trace.equal t minimized))
    traces

(* --- fuzzer fleet determinism ---------------------------------------- *)

let test_fuzz_identical_across_domains () =
  with_sanitizer_restored @@ fun () ->
  let run domains = Fuzzer.run ~trials:6 ~seed:11 ~domains () in
  let r1 = run 1 in
  let render r = Covirt_sim.Table.render (Fuzzer.table r) in
  Alcotest.(check bool) "domains 2 = domains 1" true (run 2 = r1);
  Alcotest.(check bool) "domains 7 = domains 1" true (run 7 = r1);
  Alcotest.(check string)
    "rendered table identical" (render r1)
    (render (run 7));
  Alcotest.(check int) "no replay divergences" 0 r1.Fuzzer.divergences

let test_guided_fuzz_identical_across_domains () =
  (* The guided variant: the coverage map, promoted entries and every
     other result field must not depend on the domain count either.
     Structural equality covers the Coverage.t inside (immutable
     string snapshots). *)
  with_sanitizer_restored @@ fun () ->
  let run domains = Fuzzer.run ~trials:6 ~seed:11 ~domains ~coverage:true () in
  let r1 = run 1 in
  Alcotest.(check bool) "domains 2 = domains 1" true (run 2 = r1);
  Alcotest.(check bool) "domains 7 = domains 1" true (run 7 = r1);
  Alcotest.(check bool)
    "guided run filled the coverage field" true
    (r1.Fuzzer.coverage <> None);
  Alcotest.(check string)
    "rendered table identical"
    (Covirt_sim.Table.render (Fuzzer.table r1))
    (Covirt_sim.Table.render (Fuzzer.table (run 7)))

(* --- supervisor capture hook ----------------------------------------- *)

let test_soak_shard_replay_identical () =
  (* The soak half of the replay contract: re-running a shard under
     the recorder twice captures identical bytes. *)
  let capture () =
    Recorder.arm ();
    Fun.protect ~finally:Recorder.disarm (fun () ->
        let r =
          Covirt_resilience.Soak.replay_shard ~on_trial:Recorder.set_slot
            ~shard_seed:5 ~lo:0 ~hi:12 ~sanitize:false ()
        in
        let events, dropped = Recorder.capture () in
        ( r.Covirt_resilience.Soak.faults_injected,
          Trace.make ~dropped
            ~scenario:
              (Trace.Soak_shard { seed = 5; lo = 0; hi = 12; sanitize = false })
            events ))
  in
  let f1, t1 = capture () in
  let f2, t2 = capture () in
  Alcotest.(check int) "same faults" f1 f2;
  Alcotest.(check bool) "byte-identical soak captures" true (Trace.equal t1 t2);
  Alcotest.(check bool) "soak produced events" true (t1.Trace.events <> [])

let test_supervisor_capture_hook () =
  (* A quarantine fires the hook mid-protocol and collects its path. *)
  let open Covirt_resilience in
  let gib = Covirt_sim.Units.gib in
  let machine =
    Covirt_hw.Machine.create ~seed:7 ~zones:2 ~cores_per_zone:2
      ~mem_per_zone:(2 * gib)
      ~host_reserved_per_zone:(128 * mib) ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let ctrl =
    Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config:Covirt.Config.full
  in
  let policy =
    {
      Supervisor.max_restarts = 1;
      backoff_base = 100_000;
      backoff_factor = 2;
      backoff_cap = 1_000_000;
      stability_window = 100_000_000;
      watchdog_deadline = 2_000_000;
    }
  in
  let sup = Supervisor.create ~policy ~seed:7 ctrl in
  Supervisor.set_quarantine_hook sup (fun ~name ~why ->
      Some (Printf.sprintf "/capture/%s.trace (%s)" name why));
  (match
     Supervisor.manage sup ~name:"crashy" ~launch:(fun () ->
         Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"crashy" ~cores:[ 1 ]
           ~mem:[ (0, 256 * mib) ]
           ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Exhaust the one-restart budget to trip the breaker. *)
  let crash () =
    Supervisor.run_protected sup ~name:"crashy" (fun ctx ->
        Covirt_kitten.Kitten.wrmsr_sensitive ctx)
  in
  (match crash () with
  | `Recovered -> ()
  | _ -> Alcotest.fail "first crash should recover");
  (match crash () with
  | `Quarantined _ -> ()
  | _ -> Alcotest.fail "second crash should trip the breaker");
  match Supervisor.captures sup with
  | [ (name, path) ] ->
      Alcotest.(check string) "captured enclave" "crashy" name;
      Alcotest.(check bool) "hook path collected" true (String.length path > 0)
  | l -> Alcotest.failf "expected one capture, got %d" (List.length l)

let () =
  Alcotest.run "replay"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trips every variant" `Quick
            test_codec_round_trip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_codec_rejects_malformed;
          Alcotest.test_case "total on arbitrary bytes" `Quick
            test_codec_fuzz_total;
          QCheck_alcotest.to_alcotest qcheck_codec;
        ] );
      ( "replay",
        [
          Alcotest.test_case "record -> replay round-trip bit-identical" `Quick
            test_record_replay_round_trip;
          QCheck_alcotest.to_alcotest qcheck_record_replay;
          Alcotest.test_case "sharded recording identical at domains 1/2/7"
            `Slow test_record_sharded_across_domains;
          Alcotest.test_case "recording armed leaves golden byte-identical"
            `Slow test_recording_is_zero_cost;
          Alcotest.test_case "soak-shard replay captures identical bytes" `Slow
            test_soak_shard_replay_identical;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "all four corruption classes detected" `Slow
            test_all_corruption_classes_detected;
        ] );
      ( "minimizer",
        [
          Alcotest.test_case "shrinks a crash to fixpoint" `Slow
            test_minimizer_shrinks_to_fixpoint;
          Alcotest.test_case "checked-in corpus reproduces, minimal" `Slow
            test_checked_in_corpus;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "byte-identical at domains 1/2/7" `Slow
            test_fuzz_identical_across_domains;
          Alcotest.test_case "guided fuzz byte-identical at domains 1/2/7"
            `Slow test_guided_fuzz_identical_across_domains;
        ] );
      ( "capture",
        [
          Alcotest.test_case "supervisor quarantine hook collects paths" `Quick
            test_supervisor_capture_hook;
        ] );
    ]
