(* Coverage for the smaller surfaces: VMX transitions, boot-parameter
   structures, the exec barrier, IPC validation, the Linux-grade noise
   profile, the kernel matrix, and pretty-printers (which are part of
   the operator-facing API). *)

open Covirt_hw
open Covirt_pisces
open Covirt_test_util

let mib = Covirt_sim.Units.mib

(* --- Vmx --- *)

let stub_vmcs ~core ~enclave =
  Vmcs.create ~vcpu:core ~enclave
    ~guest:{ Vmcs.entry_rip = 0x100000; boot_params_gpa = 0xff000; long_mode = true }
    ~controls:Vmcs.no_controls

let test_vmlaunch_semantics () =
  let m = Helpers.small_machine () in
  let cpu = Machine.cpu m 1 in
  let vmcs = stub_vmcs ~core:1 ~enclave:1 in
  let before = Cpu.rdtsc cpu in
  Vmx.vmlaunch ~model:m.Machine.model cpu vmcs;
  Alcotest.(check bool) "in guest" true (Cpu.in_guest cpu);
  Alcotest.(check bool) "launched" true vmcs.Vmcs.launched;
  Alcotest.(check bool) "charged" true (Cpu.rdtsc cpu > before);
  (* double launch is a programming error *)
  Alcotest.check_raises "double launch"
    (Invalid_argument "Vmx.vmlaunch: already in guest mode") (fun () ->
      Vmx.vmlaunch ~model:m.Machine.model cpu (stub_vmcs ~core:1 ~enclave:1));
  Vmx.teardown cpu;
  Alcotest.(check bool) "back to host" true (not (Cpu.in_guest cpu));
  Alcotest.(check bool) "online again" true cpu.Cpu.online

let test_exit_without_handler_kills () =
  let m = Helpers.small_machine () in
  let cpu = Machine.cpu m 1 in
  let vmcs = stub_vmcs ~core:1 ~enclave:7 in
  Vmx.vmlaunch ~model:m.Machine.model cpu vmcs;
  match Vmx.deliver_exit ~model:m.Machine.model cpu vmcs Vmcs.Cpuid with
  | exception Vmx.Vm_terminated { enclave; _ } ->
      Alcotest.(check int) "enclave id" 7 enclave
  | _ -> Alcotest.fail "handlerless exit must kill"

let test_exit_cost_charged () =
  let m = Helpers.small_machine () in
  let cpu = Machine.cpu m 1 in
  let vmcs = stub_vmcs ~core:1 ~enclave:1 in
  vmcs.Vmcs.exit_handler <- Some (fun _ -> Vmcs.Resume);
  Vmx.vmlaunch ~model:m.Machine.model cpu vmcs;
  let before = Cpu.rdtsc cpu in
  (match Vmx.deliver_exit ~model:m.Machine.model cpu vmcs Vmcs.Cpuid with
  | `Resume -> ()
  | `Skip -> Alcotest.fail "expected resume");
  Alcotest.(check int) "exit roundtrip charged"
    (Vmx.vmexit_cost ~model:m.Machine.model)
    (Cpu.rdtsc cpu - before)

(* --- Boot params --- *)

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_boot_params_shape () =
  let params =
    Boot_params.make_pisces ~enclave_id:3 ~entry_addr:(17 * mib)
      ~assigned_cores:[ 1; 2 ]
      ~assigned_memory:[ Region.make ~base:(16 * mib) ~len:(64 * mib) ]
      ~channel:(Ctrl_channel.create ()) ~timer_hz:10.0
  in
  Alcotest.(check int) "stack constant" 8192 Boot_params.hypervisor_stack_bytes;
  let rendered = Format.asprintf "%a" Boot_params.pp_pisces params in
  Alcotest.(check bool) "pp mentions enclave" true
    (contains_substring rendered "enclave 3")

(* --- Exec barrier --- *)

let test_exec_barrier_synchronizes () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let a = Helpers.ctx s 1 and b = Helpers.ctx s 2 in
  Cpu.charge a.Covirt_kitten.Kitten.cpu 1_000_000;
  Covirt_workloads.Exec.barrier [ a; b ];
  let ta = Cpu.rdtsc a.Covirt_kitten.Kitten.cpu in
  let tb = Cpu.rdtsc b.Covirt_kitten.Kitten.cpu in
  Alcotest.(check bool) "clocks within barrier cost" true (abs (ta - tb) <= 240);
  (* single-participant barrier is free *)
  let before = Cpu.rdtsc a.Covirt_kitten.Kitten.cpu in
  Covirt_workloads.Exec.barrier [ a ];
  Alcotest.(check int) "solo barrier free" before
    (Cpu.rdtsc a.Covirt_kitten.Kitten.cpu)

(* --- IPC validation --- *)

let test_ipc_validation () =
  let s = Helpers.boot_stack ~config:Covirt.Config.native () in
  let cons, cons_kitten = Helpers.second_enclave s () in
  Alcotest.check_raises "ring size" (Invalid_argument "Ipc.connect: ring_bytes")
    (fun () ->
      ignore
        (Covirt_hobbes.Ipc.connect s.Helpers.hobbes
           ~producer:(s.Helpers.enclave, s.Helpers.kitten)
           ~consumer:(cons, cons_kitten) ~name:"bad" ~ring_bytes:0))

(* --- Selfish on a Linux-grade core --- *)

let test_selfish_linux_profile () =
  let m = Helpers.small_machine () in
  let cpu = Machine.cpu m 1 in
  Apic.set_timer_hz cpu.Cpu.apic 250.0;
  let r =
    Covirt_workloads.Selfish.run_on_cpu m cpu ~duration_s:1.0
      ~background_mean_s:0.002 ~background_cost_cycles:50_000 ()
  in
  (* 250 ticks + ~500 background events *)
  Alcotest.(check bool) "hundreds of detours" true
    (List.length r.Covirt_workloads.Selfish.detours > 400);
  Alcotest.(check bool) "noise orders above LWK" true
    (r.Covirt_workloads.Selfish.noise_fraction > 0.001)

let test_noise_compare_ordering () =
  let rows = Covirt_harness.Noise_compare.run ~duration_s:0.5 () in
  match rows with
  | [ host; native; covirt ] ->
      Alcotest.(check bool) "host noisiest" true
        (host.Covirt_harness.Noise_compare.noise_fraction
        > 100.0 *. native.Covirt_harness.Noise_compare.noise_fraction);
      Alcotest.(check bool) "covirt close to native" true
        (covirt.Covirt_harness.Noise_compare.noise_fraction
        < 3.0 *. native.Covirt_harness.Noise_compare.noise_fraction)
  | _ -> Alcotest.fail "expected three environments"

(* --- Kernel matrix --- *)

let test_kernel_matrix () =
  let rows = Covirt_harness.Kernels.matrix () in
  Alcotest.(check int) "four kernels" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Covirt_harness.Kernels.kernel ^ " boots")
        true r.Covirt_harness.Kernels.boots_under_covirt;
      Alcotest.(check bool)
        (r.Covirt_harness.Kernels.kernel ^ " contained")
        true r.Covirt_harness.Kernels.wild_write_contained)
    rows

(* --- Pretty printers --- *)

let test_pretty_printers () =
  let check_nonempty name s =
    Alcotest.(check bool) name true (String.length s > 0)
  in
  check_nonempty "icr"
    (Format.asprintf "%a" Apic.pp_icr { Apic.dest = 1; vector = 8; kind = Apic.Nmi });
  check_nonempty "exit reason"
    (Format.asprintf "%a" Vmcs.pp_exit_reason (Vmcs.Abort { what = "df" }));
  check_nonempty "command"
    (Format.asprintf "%a" Covirt.Command.pp_command Covirt.Command.Flush_tlb_all);
  check_nonempty "owner" (Owner.to_string (Owner.Device "nic"));
  check_nonempty "host msg"
    (Format.asprintf "%a" Message.pp_host_msg
       (Message.Assign_device
          { seq = 1; device = "nic"; window = Region.make ~base:0 ~len:4096 }));
  check_nonempty "enclave msg"
    (Format.asprintf "%a" Message.pp_enclave_msg (Message.Console "hello"));
  let s = Helpers.boot_stack ~config:Covirt.Config.full () in
  check_nonempty "protection summary"
    (Covirt.protection_summary s.Helpers.controller);
  check_nonempty "hobbes status"
    (Format.asprintf "%a" Covirt_hobbes.Hobbes.pp_status s.Helpers.hobbes)

let () =
  Alcotest.run "misc"
    [
      ( "vmx",
        [
          Alcotest.test_case "vmlaunch" `Quick test_vmlaunch_semantics;
          Alcotest.test_case "handlerless exit" `Quick
            test_exit_without_handler_kills;
          Alcotest.test_case "exit cost" `Quick test_exit_cost_charged;
        ] );
      ("boot-params", [ Alcotest.test_case "shape" `Quick test_boot_params_shape ]);
      ("exec", [ Alcotest.test_case "barrier" `Quick test_exec_barrier_synchronizes ]);
      ("ipc", [ Alcotest.test_case "validation" `Quick test_ipc_validation ]);
      ( "noise",
        [
          Alcotest.test_case "linux profile" `Quick test_selfish_linux_profile;
          Alcotest.test_case "compare ordering" `Quick test_noise_compare_ordering;
        ] );
      ("kernels", [ Alcotest.test_case "matrix" `Quick test_kernel_matrix ]);
      ("pp", [ Alcotest.test_case "printers" `Quick test_pretty_printers ]);
    ]
