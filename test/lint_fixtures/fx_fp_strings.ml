(* warm-begin: strings are data, not code — every banned token below
   lives inside a literal and must stay inert *)
let tokens = "List.map (fun x -> x + 1) [| 0 |] (* warm-end *) Printf.printf"
let quoted = {fx|Some (x, y) :: rest — Format.printf "%a"|fx}
let pattern t = String.length t
(* warm-end *)
