let probe uid = Covirt_hw.Sanitize.access ~mem_uid:uid

let edge_tap = ref (fun _ -> ())
let note i = !edge_tap i

let guarded_tap_on = ref false
let guarded i = if !guarded_tap_on then !edge_tap i
