let broken = (
