let load path = Covirt_replay.Trace.read path

let magic = "CVRT"
