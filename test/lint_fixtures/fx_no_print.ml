let greet n = Printf.printf "hello %d\n" n
let warn () = prerr_endline "warning"
let banner () = print_endline "covirt"
