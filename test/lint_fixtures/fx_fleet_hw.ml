let vendor () = Covirt_hw.Machine.vendor
