let run f = Domain.spawn f
