let snapshot () = Covirt_obs.Exporter_state.snapshot ()
let plan () = Covirt_fleet.Fleet.default_domains
