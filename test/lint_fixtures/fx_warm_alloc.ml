type r = { mutable v : int }

let stats_on = ref false

(* warm-begin: fixture hot region — each [ignore] line below is one
   banned allocation shape *)
let hot xs x cell =
  ignore (fun y -> y + x);
  ignore (x, x);
  ignore (x :: xs);
  ignore [| x |];
  ignore (Some x);
  ignore { v = x };
  ignore (List.length xs);
  ignore (Printf.sprintf "%d" x);
  cell.v <- x

let miss tbl k =
  match Hashtbl.find tbl k with
  | v -> v
  | exception Not_found -> Some k

let maybe x = if !stats_on then ignore (Some x)
(* warm-end *)
