let hits = Covirt_obs.Metrics.counter "fx.hits"
let tick n = Covirt_obs.Metrics.add hits n
let mark () = Covirt_obs.Span.instant ~name:"fx" 0
