(* The trace header begins with CVRT; see lib/replay/trace.ml.  A cold
   fill may read [List.map (fun x -> Some x)] without tripping the
   warm-alloc analysis, because comments are not code. *)
let add a b = a + b

(* warm-begin *)
(* Printf.sprintf "%d", [ 1; 2 ], (x, y) — all inert in comments, even
   one quoting a string: "Domain.spawn".  (* Nested: Unix.gettimeofday
   stays inert too. *) *)
let double x = x + x
(* warm-end *)
