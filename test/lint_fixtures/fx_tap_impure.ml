let hits = Covirt_obs.Metrics.counter "fx.hits"
let enabled () = true

let tick n =
  if !Covirt_obs.Metrics.on && enabled () then Covirt_obs.Metrics.add hits n
