let seed () = Random.self_init ()
let now () = Unix.gettimeofday ()
let merge h = Hashtbl.fold (fun k v acc -> max acc (k + v)) h 0
