let hits = Covirt_obs.Metrics.counter "fx.hits"

let tick n = if !Covirt_obs.Metrics.on then Covirt_obs.Metrics.add hits n

let translate base off = base + off
