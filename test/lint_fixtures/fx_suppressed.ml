(* lint: allow no-print — fixture exercises suppression accounting *)
let shout () = print_endline "fx"

let loud () = print_string "fx"
