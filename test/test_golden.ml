(* The bit-equality gate for the translation fast path: every figure
   table, study, soak residual and per-CPU counter in the golden
   scenario set must match the snapshot captured before the
   set-associative TLB, EPT walk cache and charge memoization went in.
   An optimization that shifts a single simulated cycle fails here.

   Regenerate (only for an intentional semantic change):
     dune exec test/golden/gen_golden.exe > test/golden/translation.expected *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let first_divergence a b =
  let n = min (String.length a) (String.length b) in
  let rec go i line =
    if i >= n then (i, line)
    else if a.[i] <> b.[i] then (i, line)
    else go (i + 1) (if a.[i] = '\n' then line + 1 else line)
  in
  go 0 1

let check_capture ~what actual =
  let expected = read_file "golden/translation.expected" in
  if String.equal expected actual then ()
  else
    let pos, line = first_divergence expected actual in
    Alcotest.failf
      "%s diverged at byte %d (line %d): expected %S..., got %S..." what pos
      line
      (String.sub expected pos (min 40 (String.length expected - pos)))
      (String.sub actual pos (min 40 (String.length actual - pos)))

let test_bit_identical () =
  check_capture ~what:"golden output" (Covirt_harness.Golden.capture ())

(* The committed snapshot was captured at whatever domain count the
   regenerating machine had; a four-domain fleet must reproduce it to
   the byte, or the runner's placement is leaking into results. *)
let test_bit_identical_under_fleet () =
  check_capture ~what:"golden output under a 4-domain fleet"
    (Covirt_harness.Golden.capture ~domains:4 ())

let () =
  Alcotest.run "golden"
    [
      ( "translation",
        [
          Alcotest.test_case "bit-identical results" `Quick test_bit_identical;
          Alcotest.test_case "bit-identical under fleet (domains:4)" `Slow
            test_bit_identical_under_fleet;
        ] );
    ]
