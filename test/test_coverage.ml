(* covirt.replay Coverage and Corpus: the bitset semantics, the
   zero-cost-when-armed guarantee, the on-disk corpus codec, and the
   coverage-guided fuzzing loop (promotion, reproducibility, growth
   over the unguided baseline, edge-preserving minimization). *)

open Covirt_replay

let with_sanitizer_restored f =
  let had = Covirt_hw.Sanitize.requested () in
  Fun.protect
    ~finally:(fun () -> if not had then Covirt_hw.Sanitize.release ())
    f

(* --- the bitset ------------------------------------------------------ *)

let test_map_semantics () =
  Alcotest.(check int) "empty has no edges" 0 (Coverage.count Coverage.empty);
  Alcotest.(check bool) "empty = empty" true
    (Coverage.equal Coverage.empty Coverage.empty);
  for i = 0 to Coverage.total - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "edge %d unset in empty" i)
      false
      (Coverage.mem Coverage.empty i);
    (* Every edge has a stable, non-empty name. *)
    Alcotest.(check bool)
      (Printf.sprintf "edge %d named" i)
      true
      (String.length (Coverage.edge_name i) > 0)
  done;
  Alcotest.(check_raises) "edge_name out of range"
    (Invalid_argument "Coverage.edge_name") (fun () ->
      ignore (Coverage.edge_name Coverage.total));
  Alcotest.(check int) "union with empty adds nothing" 0
    (Coverage.count (Coverage.union Coverage.empty Coverage.empty));
  Alcotest.(check bool) "empty subset of empty" true
    (Coverage.subset Coverage.empty ~of_:Coverage.empty);
  Alcotest.(check int) "no new edges over itself" 0
    (Coverage.new_edges Coverage.empty ~base:Coverage.empty)

let test_map_bytes_round_trip () =
  let bytes = Coverage.to_bytes Coverage.empty in
  (match Coverage.of_bytes bytes with
  | Ok c -> Alcotest.(check bool) "roundtrip" true (Coverage.equal c Coverage.empty)
  | Error e -> Alcotest.failf "of_bytes rejected its own encoding: %s" e);
  (match Coverage.of_bytes (bytes ^ "\x00") with
  | Ok _ -> Alcotest.fail "of_bytes accepted a longer map"
  | Error _ -> ());
  match Coverage.of_bytes "" with
  | Ok _ -> Alcotest.fail "of_bytes accepted the empty string"
  | Error _ -> ()

(* A replayed trial batch under an armed map: the capture must hold
   real edges, and union/new_edges/subset must behave on them. *)
let captured_coverage () =
  with_sanitizer_restored @@ fun () ->
  let r = Scenario.record ~config:"full" ~seed:7 ~trials:2 () in
  Coverage.arm ();
  Fun.protect ~finally:Coverage.disarm (fun () ->
      ignore (Coverage.capture () : Coverage.t);
      ignore (Replayer.run r.Scenario.trace : Scenario.report);
      Coverage.capture ())

let test_collection_captures_edges () =
  let c = captured_coverage () in
  Alcotest.(check bool) "a replay covers edges" true (Coverage.count c > 0);
  Alcotest.(check bool) "covers fewer than all" true
    (Coverage.count c < Coverage.total);
  Alcotest.(check bool) "self subset" true (Coverage.subset c ~of_:c);
  Alcotest.(check int) "union is idempotent" (Coverage.count c)
    (Coverage.count (Coverage.union c c));
  Alcotest.(check int) "no new edges over itself" 0
    (Coverage.new_edges c ~base:c);
  Alcotest.(check int) "new edges over empty = count" (Coverage.count c)
    (Coverage.new_edges c ~base:Coverage.empty);
  (* Determinism: replaying the same trace captures the same map. *)
  Alcotest.(check bool) "same trace, same map" true
    (Coverage.equal c (captured_coverage ()))

let test_coverage_armed_is_zero_cost () =
  (* The tentpole guarantee: the full golden scenario set, run with
     the coverage taps armed, produces byte-identical output to the
     committed snapshot (the same gate the recorder passes). *)
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let expected = read_file "golden/translation.expected" in
  Coverage.arm ();
  let actual =
    Fun.protect ~finally:Coverage.disarm Covirt_harness.Golden.capture
  in
  Alcotest.(check bool)
    "golden capture byte-identical with coverage armed" true
    (String.equal expected actual)

(* --- the corpus codec ------------------------------------------------ *)

let sample_entry () =
  with_sanitizer_restored @@ fun () ->
  let r = Scenario.record ~config:"mem" ~seed:11 ~trials:2 () in
  { Corpus.trace = r.Scenario.trace; coverage = captured_coverage () }

let test_corpus_round_trip () =
  let e = sample_entry () in
  match Corpus.decode (Corpus.encode e) with
  | Ok e' ->
      Alcotest.(check bool) "trace round-trips" true
        (Trace.equal e.Corpus.trace e'.Corpus.trace);
      Alcotest.(check bool) "coverage round-trips" true
        (Coverage.equal e.Corpus.coverage e'.Corpus.coverage)
  | Error why -> Alcotest.failf "decode failed: %s" why

let test_corpus_rejects_malformed () =
  let bytes = Corpus.encode (sample_entry ()) in
  let reject what s =
    match Corpus.decode s with
    | Ok _ -> Alcotest.failf "decode accepted %s" what
    | Error _ -> ()
  in
  reject "empty input" "";
  reject "bad magic" ("XVCS" ^ String.sub bytes 4 (String.length bytes - 4));
  reject "truncated entry" (String.sub bytes 0 (String.length bytes - 3));
  reject "truncated to header" (String.sub bytes 0 5);
  reject "trailing garbage" (bytes ^ "\x00");
  let b = Bytes.of_string bytes in
  Bytes.set b 4 '\x7f';
  reject "unknown version" (Bytes.to_string b)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "covirt-corpus-%d-%d" (Unix.getpid ()) !n)
    in
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    dir

let test_corpus_save_load () =
  let e = sample_entry () in
  let dir = fresh_dir () in
  let path = Corpus.save ~dir e in
  Alcotest.(check string) "content-addressed filename"
    (Filename.concat dir (Corpus.digest e ^ Corpus.extension))
    path;
  (* Idempotent: saving again changes nothing. *)
  ignore (Corpus.save ~dir e : string);
  match Corpus.load ~dir with
  | Error why -> Alcotest.failf "load failed: %s" why
  | Ok entries ->
      Alcotest.(check int) "one entry" 1 (List.length entries);
      Alcotest.(check bool) "reload reproduces the coverage totals" true
        (Coverage.equal
           (Corpus.union_coverage [ e ])
           (Corpus.union_coverage entries))

let test_corpus_load_missing_and_malformed () =
  (match Corpus.load ~dir:"/nonexistent/covirt-corpus" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "missing dir yielded entries"
  | Error why -> Alcotest.failf "missing dir should be empty, got: %s" why);
  let dir = fresh_dir () in
  let bad = Filename.concat dir ("deadbeef" ^ Corpus.extension) in
  let oc = open_out_bin bad in
  output_string oc "CVCS\x01garbage";
  close_out oc;
  match Corpus.load ~dir with
  | Ok _ -> Alcotest.fail "load accepted a malformed entry"
  | Error why ->
      Alcotest.(check bool) "error names the offending file" true
        (let rec mem i =
           i >= 0
           && (String.length why - i >= 8
               && String.sub why i 8 = "deadbeef"
              || mem (i - 1))
         in
         mem (String.length why - 8))

(* --- the guided loop ------------------------------------------------- *)

let test_guided_fuzz_reproducible () =
  with_sanitizer_restored @@ fun () ->
  let run () = Fuzzer.run ~trials:8 ~seed:5 ~coverage:true () in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "same seed, same result" true (r1 = r2);
  Alcotest.(check (list string)) "same promoted digests"
    (List.map Corpus.digest r1.Fuzzer.promoted)
    (List.map Corpus.digest r2.Fuzzer.promoted)

let test_guided_fuzz_grows_corpus () =
  with_sanitizer_restored @@ fun () ->
  let guided = Fuzzer.run ~trials:10 ~seed:5 ~coverage:true () in
  let unguided = Fuzzer.run ~trials:10 ~seed:5 () in
  Alcotest.(check bool) "guided run promotes entries" true
    (guided.Fuzzer.promoted <> []);
  Alcotest.(check int) "unguided run promotes nothing" 0
    (List.length unguided.Fuzzer.promoted);
  Alcotest.(check bool) "guided run found edges" true
    (guided.Fuzzer.new_edges > 0);
  (* Seeding the promoted entries back in: the accumulated baseline
     must shrink the second run's new-edge count (adaptivity). *)
  let again =
    Fuzzer.run ~trials:10 ~seed:5 ~coverage:true
      ~corpus:guided.Fuzzer.promoted ()
  in
  Alcotest.(check bool) "corpus baseline absorbs known edges" true
    (again.Fuzzer.new_edges < guided.Fuzzer.new_edges)

let test_minimizer_preserves_edges () =
  with_sanitizer_restored @@ fun () ->
  let r = Scenario.record ~config:"full" ~seed:7 ~trials:2 () in
  let trace = r.Scenario.trace in
  let edges = captured_coverage () in
  let minimized, _ =
    Minimizer.minimize ~keep:(fun _ -> true) ~preserve_edges:edges
      ~max_probes:64 trace
  in
  (* The reduction must still cover every preserved edge. *)
  Coverage.arm ();
  let after =
    Fun.protect ~finally:Coverage.disarm (fun () ->
        ignore (Coverage.capture () : Coverage.t);
        ignore (Replayer.run minimized : Scenario.report);
        Coverage.capture ())
  in
  Alcotest.(check bool) "covering edges preserved" true
    (Coverage.subset edges ~of_:after)

let () =
  Alcotest.run "coverage"
    [
      ( "map",
        [
          Alcotest.test_case "bitset semantics and edge names" `Quick
            test_map_semantics;
          Alcotest.test_case "to_bytes/of_bytes total round-trip" `Quick
            test_map_bytes_round_trip;
          Alcotest.test_case "a replay captures a deterministic map" `Slow
            test_collection_captures_edges;
          Alcotest.test_case "coverage armed leaves golden byte-identical"
            `Slow test_coverage_armed_is_zero_cost;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "entry encode/decode round-trip" `Slow
            test_corpus_round_trip;
          Alcotest.test_case "rejects malformed entries" `Slow
            test_corpus_rejects_malformed;
          Alcotest.test_case "save/load reproduces coverage totals" `Slow
            test_corpus_save_load;
          Alcotest.test_case "missing dir empty, malformed file typed error"
            `Slow test_corpus_load_missing_and_malformed;
        ] );
      ( "guided",
        [
          Alcotest.test_case "same seed, same promoted corpus" `Slow
            test_guided_fuzz_reproducible;
          Alcotest.test_case "guided run grows the corpus, unguided does not"
            `Slow test_guided_fuzz_grows_corpus;
          Alcotest.test_case "minimizer preserves covering edges" `Slow
            test_minimizer_preserves_edges;
        ] );
    ]
