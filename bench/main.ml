(* The evaluation harness: regenerates every table and figure of the
   paper, the ablation studies, and a set of Bechamel microbenchmarks
   of Covirt's hot paths.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig5    # one experiment
     dune exec bench/main.exe -- quick   # everything, reduced sizes

   Flags:
     --json               write BENCH_covirt.json (harness wall-clocks
                          + Bechamel ns/op estimates)
     --emit-baseline f    snapshot harness wall-clocks as TSV
     --check f            exit 1 if any harness regressed >25% vs f
     --trace-out f        enable observability and write a Chrome
                          trace_event JSON of the run (do not combine
                          with --check: tracing adds recording work)
     --gc-stats f         write per-microbench minor words/op and the
                          process GC counters as TSV (CI artifact)
     --domains N          fleet placement for the sharded harnesses
                          (default Domain.recommended_domain_count);
                          changes wall-clocks only, never a result byte

   Experiments: table1 fig3 fig4 fig5 fig6 fig7 fig8
                ablate-coalesce ablate-piv ablate-sync fleet bechamel *)

open Covirt_harness

let section title =
  Format.printf "@.=== %s ===@.@." title

(* Fleet placement for the sharded harnesses, set by --domains.  This
   is physical placement only: any value renders the same bytes. *)
let domains_arg : int option ref = ref None

let run_table1 () =
  section "Table I: Benchmark Versions and Parameters";
  let t =
    Covirt_sim.Table.create ~columns:[ "Benchmark Name"; "Version"; "Parameters" ]
  in
  List.iter
    (fun (name, version, params) ->
      Covirt_sim.Table.add_row t [ name; version; params ])
    Experiments.table1;
  Covirt_sim.Table.print t

let run_fig3 ~quick () =
  section "Fig. 3: Selfish-Detour noise profiles";
  let rows = Fig3.run ~quick ?domains:!domains_arg () in
  Covirt_sim.Table.print_auto (Fig3.table rows);
  Fig3.print_scatter rows ~duration_s:(if quick then 0.5 else 2.0);
  Format.printf "@.";
  Fig3.print_histograms rows;
  Format.printf
    "Paper: \"The different configurations show little variation in their@.\
     noise profiles\" — detour counts are identical; only interrupt@.\
     delivery stretches under full interception.@."

let run_fig4 ~quick () =
  section "Fig. 4: XEMEM attach delay vs region size";
  let points = Fig4.run ~quick () in
  Covirt_sim.Table.print_auto (Fig4.table points);
  Format.printf
    "Paper: \"Covirt imposes little to no overhead for this range of@.\
     region sizes\" — the controller's coalesced EPT update is masked@.\
     by the page-frame-list transmission both configurations pay.@."

let run_fig5 ~quick () =
  section "Fig. 5(a): STREAM";
  let rows = Fig5.run ~quick ?domains:!domains_arg () in
  Covirt_sim.Table.print_auto (Fig5.stream_table rows);
  section "Fig. 5(b): RandomAccess";
  Covirt_sim.Table.print_auto (Fig5.gups_table rows);
  Format.printf
    "Paper: STREAM comparable to native in all configurations;@.\
     RandomAccess worst case 3.1%% (memory+IPI), memory-only 1.8%%.@."

let run_fig6 ~quick () =
  section "Fig. 6: MiniFE scaling over CPU-core/NUMA-zone layouts";
  Covirt_sim.Table.print_auto (Fig6.table (Fig6.run ~quick ()));
  Format.printf
    "Paper: \"Covirt imposes little to no overhead on MiniFE across all@.\
     configurations.\"@."

let run_fig7 ~quick () =
  section "Fig. 7: HPCG scaling over CPU-core/NUMA-zone layouts";
  let rows = Fig7.run ~quick () in
  Covirt_sim.Table.print_auto (Fig7.table rows);
  Format.printf
    "Worst overhead across layouts and configs: %.2f%% (paper: 1.4%%).@."
    (100.0 *. Fig7.worst_overhead rows)

let run_fig8 ~quick () =
  section "Fig. 8: LAMMPS loop times (8 cores / 2 NUMA zones)";
  let rows = Fig8.run ~quick () in
  Covirt_sim.Table.print_auto (Fig8.table rows);
  Format.printf
    "Chute most sensitive: %b (paper: \"Chute shows the most sensitivity@.\
     to the protections being enabled, with the native and no-feature@.\
     configurations performing the best\").@."
    (Fig8.chute_is_most_sensitive rows)

let run_ablate_coalesce ~quick () =
  section "Ablation: EPT large-page coalescing (RandomAccess)";
  Covirt_sim.Table.print_auto
    (Ablate.coalescing_table (Ablate.coalescing ~quick ?domains:!domains_arg ()))

let run_ablate_piv () =
  section "Ablation: posted interrupts vs full APIC virtualization";
  Covirt_sim.Table.print_auto (Ablate.piv_table (Ablate.piv_vs_full ()))

let run_ablate_sync ~quick () =
  section "Ablation: asynchronous vs synchronous configuration updates";
  Covirt_sim.Table.print_auto (Ablate.sync_table (Ablate.sync_vs_async ~quick ()))

let run_compare ~quick () =
  section "Comparison: Covirt vs traditional virtualization (Fig. 1b)";
  Covirt_sim.Table.print_auto (Compare_virt.ipc_table (Compare_virt.ipc ()));
  Covirt_sim.Table.print_auto (Compare_virt.sharing_table (Compare_virt.sharing ~quick ()));
  Format.printf
    "Covirt's IPC rides shared identity mappings with only a whitelist@.\
     check on the doorbell; full virtualization pays two exit pairs and@.\
     a hypervisor copy per message, and a balloon/remap round trip for@.\
     every sharing-topology change.@."

let run_isolation ~quick () =
  section "Performance isolation: bandwidth pressure across the partition";
  Covirt_sim.Table.print_auto (Isolation.table (Isolation.run ~quick ()));
  Format.printf
    "Pressure in the other NUMA zone is free; pressure in the enclave's@.\
     own zone costs the same with and without Covirt — protection@.\
     neither causes nor cures bandwidth interference.@."

let run_campaign ~quick () =
  section "Fault-injection campaign: containment rates by configuration";
  let trials = if quick then 25 else 60 in
  Covirt_sim.Table.print_auto
    (Campaign.table (Campaign.run ~trials ?domains:!domains_arg ()));
  Format.printf
    "Random faults from the paper's taxonomy against a two-tenant node.@.\
     Each feature contains exactly its own fault classes (mem: wild@.\
     writes; ipi: errant vectors; msr+io: register/port abuse; the@.\
     base hypervisor: aborts) — with every feature on, no fault kills@.\
     the node or touches the other tenant; the residue is latent@.\
     writes to free memory inside the attacker's own blast radius.@."

let run_noise () =
  section "OS noise: host Linux core vs LWK enclave vs protected enclave";
  Covirt_sim.Table.print_auto (Noise_compare.table (Noise_compare.run ()));
  Format.printf
    "The LWK buys orders of magnitude in noise; Covirt does not give@.\
     it back.@."

let run_scale ~quick () =
  section "Scale: protection cost vs co-resident enclave count";
  Covirt_sim.Table.print_auto
    (Scale.table (Scale.run ~quick ?domains:!domains_arg ()));
  Format.printf
    "Per-core hypervisor contexts and per-enclave EPTs: the protection@.\
     cost each enclave pays is independent of its neighbours.@."

let run_kernels () =
  section "Generalizability: the co-kernel architecture matrix";
  Covirt_sim.Table.print_auto (Kernels.table (Kernels.matrix ()));
  Format.printf
    "Three kernel architectures from different points of the paper's@.\
     integration axis, all protected by the same controller with zero@.\
     kernel-specific code.@."

(* ------------------------------------------------------------------ *)
(* The dense-node load generator: Zipf-skewed control-plane churn under
   admission control.  The simulated overall p99 op latency is recorded
   as loadgen_p99_ns — a deterministic (cycle-model) figure, so the
   25% regression gate on it is meaningful, unlike wall-clock. *)

let loadgen_p99_ns : float option ref = ref None

let run_loadgen ~quick () =
  section "Loadgen: dense-node control-plane churn (Zipf, admission)";
  let module L = Covirt_loadgen.Loadgen in
  let tenants = if quick then 128 else 512 in
  let ops = if quick then 1024 else 4096 in
  let spec = L.spec ~tenants ~ops ~shards:8 ~seed:2026 () in
  let r = L.run ?domains:!domains_arg spec in
  let t = L.totals r in
  let tbl =
    Covirt_sim.Table.create ~columns:[ "metric"; "value" ]
  in
  List.iter
    (fun (k, v) -> Covirt_sim.Table.add_row tbl [ k; v ])
    [
      ("tenants", string_of_int tenants);
      ("ops", string_of_int ops);
      ("creates", string_of_int t.L.creates);
      ("destroys", string_of_int t.L.destroys);
      ("peak in-flight", string_of_int (L.peak_in_flight r));
      ("p50 ns", Printf.sprintf "%.0f" (L.quantile_ns r ~p:50.));
      ("p99 ns", Printf.sprintf "%.0f" (L.quantile_ns r ~p:99.));
      ("verifier violations", string_of_int (L.violations r));
      ("audit", if L.ok r then "clean" else "FAILED");
    ];
  Covirt_sim.Table.print tbl;
  loadgen_p99_ns := Some (L.quantile_ns r ~p:99.)

(* ------------------------------------------------------------------ *)
(* The fleet experiment: the one place wall-clock is the measurement.
   A sharded soak runs once on a single domain and once on the fleet;
   the rendered result tables must be byte-identical (the determinism
   contract), and the wall-clock ratio is recorded as fleet_speedup. *)

let fleet_speedup : float option ref = ref None
let fleet_domains : int option ref = ref None

let run_fleet ~quick () =
  section "Fleet: domain-sharded soak, determinism and wall-clock speedup";
  let domains =
    match !domains_arg with
    | Some d -> d
    | None -> Covirt_fleet.Fleet.recommended_domains ()
  in
  fleet_domains := Some domains;
  let trials = if quick then 400 else 1600 in
  let shards = 16 in
  let soak d =
    let t0 = Unix.gettimeofday () in
    let r = Covirt_resilience.Soak.run ~trials ~seed:2026 ~shards ~domains:d () in
    (Covirt_sim.Table.render (Covirt_resilience.Soak.table r),
     Unix.gettimeofday () -. t0)
  in
  let seq_out, seq_t = soak 1 in
  let par_out, par_t = soak domains in
  let speedup = seq_t /. Float.max par_t 1e-9 in
  fleet_speedup := Some speedup;
  let t =
    Covirt_sim.Table.create ~columns:[ "domains"; "wall s"; "speedup" ]
  in
  Covirt_sim.Table.add_row t [ "1"; Printf.sprintf "%.2f" seq_t; "1.00x" ];
  Covirt_sim.Table.add_row t
    [ string_of_int domains; Printf.sprintf "%.2f" par_t;
      Printf.sprintf "%.2fx" speedup ];
  Covirt_sim.Table.print t;
  Format.printf
    "%d-shard soak (%d trials), byte-identical across placements: %b@."
    shards trials (String.equal seq_out par_out);
  if not (String.equal seq_out par_out) then begin
    Format.eprintf
      "fleet: DETERMINISM VIOLATION — domains:1 and domains:%d rendered \
       different soak tables@."
      domains;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Microbenchmarks of the hot paths.  Each is one closure measured two
   ways: Bechamel for ns/op, and a direct [Gc.minor_words] delta for
   minor words/op.  [gate] marks the warm-path set — translate, TLB
   lookup, memoized charge — that the allocation gate pins to exactly
   zero words/op (the zero-GC hot-path contract; see DESIGN.md §13). *)

type micro = { mname : string; gate : bool; fn : unit -> unit }

let microbenches () =
  let open Covirt_hw in
  let mib = Covirt_sim.Units.mib in
  (* EPT translate on a coalesced identity map.  [translate_code] is
     the allocation-free entry the simulator's own warm path uses. *)
  let ept = Ept.create () in
  Ept.map_region ept (Region.make ~base:0 ~len:(1024 * mib));
  let translate =
    { mname = "ept_translate"; gate = true;
      fn =
        (fun () -> ignore (Ept.translate_code ept 0x12345678 ~access:`Read)) }
  in
  (* EPT translate on a 4K-grain map (the hard case: a full 4-level
     walk when cold), warm via the paging-structure walk cache vs cold
     with the cache disabled *)
  let grain_len = 64 * mib in
  let ept_warm = Ept.create ~max_page:Addr.Page_4k () in
  Ept.map_region ept_warm (Region.make ~base:0 ~len:grain_len);
  (* pre-touch every page so the measurement sees the steady state,
     not the one-off lazy slot resolution *)
  for p = 0 to (grain_len / 4096) - 1 do
    ignore (Ept.translate_code ept_warm (p * 4096) ~access:`Read)
  done;
  let widx = ref 0 in
  let translate_warm =
    { mname = "ept_translate_warm"; gate = true;
      fn =
        (fun () ->
          incr widx;
          ignore
            (Ept.translate_code ept_warm
               ((!widx * 4096 + 8) land (grain_len - 1))
               ~access:`Read)) }
  in
  let ept_cold = Ept.create ~max_page:Addr.Page_4k ~walk_cache:false () in
  Ept.map_region ept_cold (Region.make ~base:0 ~len:grain_len);
  let cidx = ref 0 in
  let translate_cold =
    { mname = "ept_translate_cold"; gate = false;
      fn =
        (fun () ->
          incr cidx;
          ignore
            (Ept.translate_code ept_cold
               ((!cidx * 4096 + 8) land (grain_len - 1))
               ~access:`Read)) }
  in
  (* EPT map/unmap of a 2M region *)
  let scratch = Ept.create () in
  let map_unmap =
    { mname = "ept_map_unmap_2m"; gate = false;
      fn =
        (fun () ->
          let r = Region.make ~base:(2 * mib) ~len:(2 * mib) in
          Ept.map_region scratch r;
          Ept.unmap_region scratch r) }
  in
  (* TLB lookup — [lookup] returns the slot's stored entry option, so
     the real API is itself on the gate *)
  let model = Cost_model.default in
  let tlb = Tlb.create ~model ~rng:(Covirt_sim.Rng.create ~seed:1) in
  Tlb.install tlb 0x200000 ~page_size:Addr.Page_2m;
  let tlb_lookup =
    { mname = "tlb_lookup"; gate = true;
      fn = (fun () -> ignore (Tlb.lookup tlb 0x200400)) }
  in
  (* TLB lookup against a completely full TLB — every probe hits, and
     the probe address cycles through every installed page so set
     indexing is exercised, not just one hot set *)
  let full = Tlb.create ~model ~rng:(Covirt_sim.Rng.create ~seed:2) in
  let sets, ways = Tlb.geometry full Addr.Page_4k in
  let n_full = sets * ways in
  let hit_addrs = Array.init n_full (fun i -> i * 4096) in
  Array.iter (fun a -> Tlb.install full a ~page_size:Addr.Page_4k) hit_addrs;
  let hidx = ref 0 in
  let tlb_lookup_hit =
    { mname = "tlb_lookup_hit"; gate = true;
      fn =
        (fun () ->
          incr hidx;
          ignore (Tlb.lookup_hit full hit_addrs.(!hidx land (n_full - 1)))) }
  in
  let midx = ref 0 in
  let tlb_lookup_miss =
    { mname = "tlb_lookup_miss"; gate = true;
      fn =
        (fun () ->
          incr midx;
          ignore (Tlb.lookup full ((n_full + (!midx land 1023)) * 4096))) }
  in
  let xidx = ref 0 in
  let tlb_lookup_mixed =
    { mname = "tlb_lookup_mixed"; gate = true;
      fn =
        (fun () ->
          incr xidx;
          let a =
            if !xidx land 1 = 0 then hit_addrs.(!xidx land (n_full - 1))
            else (n_full + (!xidx land 1023)) * 4096
          in
          ignore (Tlb.lookup full a)) }
  in
  (* memoized bulk charge model: warm calls are one scratch-key probe *)
  let machine =
    Machine.create ~zones:1 ~cores_per_zone:1 ~mem_per_zone:(256 * mib)
      ~host_reserved_per_zone:(32 * mib) ()
  in
  let cpu0 = Machine.cpu machine 0 in
  let charge_random =
    { mname = "charge_random"; gate = true;
      fn =
        (fun () ->
          Machine.charge_random machine cpu0 ~ops:1000 ~base:(64 * mib)
            ~working_set:(16 * mib) ~sharers:1 ~page_size:Addr.Page_2m) }
  in
  let charge_stream =
    { mname = "charge_stream"; gate = true;
      fn =
        (fun () ->
          Machine.charge_stream machine cpu0 ~base:(64 * mib)
            ~bytes:(8 * mib) ~sharers:1 ~page_size:Addr.Page_2m) }
  in
  (* whitelist check *)
  let wl = Covirt.Whitelist.create ~enclave_cores:[ 1; 2; 3; 4 ] in
  Covirt.Whitelist.grant wl ~vector:0x44 ~dest:7;
  let whitelist =
    { mname = "whitelist_permits"; gate = false;
      fn =
        (fun () ->
          ignore
            (Covirt.Whitelist.permits wl
               ~icr:{ Apic.dest = 7; vector = 0x44; kind = Apic.Fixed })) }
  in
  (* command queue round trip *)
  let q = Covirt.Command.create_queue () in
  let cmdq =
    { mname = "command_queue_roundtrip"; gate = false;
      fn =
        (fun () ->
          ignore (Covirt.Command.enqueue q Covirt.Command.Flush_tlb_all);
          ignore (Covirt.Command.dequeue q)) }
  in
  (* region set membership *)
  let set =
    Region.Set.of_list
      (List.init 64 (fun i -> Region.make ~base:(i * 4 * mib) ~len:(2 * mib)))
  in
  let region_mem =
    { mname = "region_set_mem"; gate = false;
      fn = (fun () -> ignore (Region.Set.mem set (100 * mib))) }
  in
  (* rng — bits64 boxes its Int64 result by design; not on the gate *)
  let rng = Covirt_sim.Rng.create ~seed:9 in
  let rng_test =
    { mname = "rng_bits64"; gate = false;
      fn = (fun () -> ignore (Covirt_sim.Rng.bits64 rng)) }
  in
  [
    translate; translate_warm; translate_cold; map_unmap;
    tlb_lookup; tlb_lookup_hit; tlb_lookup_miss; tlb_lookup_mixed;
    charge_random; charge_stream; whitelist; cmdq; region_mem; rng_test;
  ]

(* Microbench estimates, collected for the JSON report.
   [micro_results] is the floor latency (best of N tight loops) — the
   robust estimate on a noisy shared CPU, and the one gates read;
   [micro_ols] keeps Bechamel's OLS fit for comparison. *)
let micro_results : (string * float) list ref = ref []
let micro_ols : (string * float) list ref = ref []
let micro_alloc : (string * float) list ref = ref []
let alloc_failures : (string * float) list ref = ref []

(* Minor words allocated by [reps] calls of [f].  The [Gc.minor_words]
   stub boxes its float result *after* sampling the counter, so the
   [before] sample's own box (2 words) lands inside the measured
   window; measuring a no-op loop first and subtracting removes that
   constant, letting the gate assert *exactly* zero words/op. *)
let alloc_reps = 10_000

let minor_words_of f reps =
  for _ = 1 to 256 do f () done;
  (* warm: fill caches/memos, force lazies *)
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to reps do f () done;
  let after = Gc.minor_words () in
  after -. before

let noop () = ()

(* Exact zero-allocation claims only hold under the native compiler;
   bytecode boxes float temporaries the optimizer would keep in
   registers.  The gate is skipped (with a note) under bytecode. *)
let native = Sys.backend_type = Sys.Native

(* Floor latency: best of a few tight loops.  The minimum is the
   standard robust per-op estimate on a preempted/shared CPU, where an
   OLS fit over noisy samples can be arbitrarily bad. *)
let min_ns_of f =
  let iters = 100_000 in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do f () done;
    let dt = Unix.gettimeofday () -. t0 in
    let ns = dt *. 1e9 /. float_of_int iters in
    if ns < !best then best := ns
  done;
  !best

let measure_alloc ms =
  let calib = minor_words_of noop alloc_reps in
  let t =
    Covirt_sim.Table.create
      ~columns:[ "operation"; "minor words/op"; "gate"; "floor ns/op" ]
  in
  List.iter
    (fun m ->
      let w =
        (minor_words_of m.fn alloc_reps -. calib) /. float_of_int alloc_reps
      in
      let ns = min_ns_of m.fn in
      micro_alloc := (m.mname, w) :: !micro_alloc;
      micro_results := (m.mname, ns) :: !micro_results;
      if m.gate && native && w <> 0.0 then
        alloc_failures := (m.mname, w) :: !alloc_failures;
      Covirt_sim.Table.add_row t
        [ m.mname; Printf.sprintf "%.4f" w;
          (if m.gate then "= 0" else "-"); Printf.sprintf "%.1f" ns ])
    ms;
  Covirt_sim.Table.print t;
  if not native then
    Format.printf "(bytecode backend: allocation gate not enforced)@."

let check_alloc_gate () =
  match !alloc_failures with
  | [] ->
      if !micro_alloc <> [] && native then
        Format.printf
          "@.bench alloc gate: all warm-path microbenches at 0 minor \
           words/op@."
  | fs ->
      List.iter
        (fun (n, w) ->
          Format.eprintf
            "bench alloc gate: FAIL %s allocates %.4f minor words/op \
             (must be 0)@."
            n w)
        fs;
      exit 1

let run_bechamel () =
  section "Bechamel microbenchmarks (host-side hot paths, real ns)";
  let ms = microbenches () in
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.15) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let t = Covirt_sim.Table.create ~columns:[ "operation"; "ns/op"; "r^2" ] in
  List.iter
    (fun m ->
      let test = Test.make ~name:m.mname (Staged.stage m.fn) in
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] ->
                micro_ols := (name, e) :: !micro_ols;
                Format.asprintf "%.1f" e
            | Some es ->
                String.concat ","
                  (List.map (fun e -> Format.asprintf "%.1f" e) es)
            | None -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Format.asprintf "%.3f" r
            | None -> "n/a"
          in
          Covirt_sim.Table.add_row t [ name; estimate; r2 ])
        analysis)
    ms;
  Covirt_sim.Table.print t;
  section "Minor allocation per operation (Gc.minor_words delta)";
  measure_alloc ms

(* ------------------------------------------------------------------ *)
(* The persisted benchmark pipeline: every experiment's wall-clock is
   recorded; [--json] writes the lot (plus microbench estimates) to
   BENCH_covirt.json, [--emit-baseline f] snapshots the wall-clocks as
   TSV, and [--check f] fails the run when any harness regresses more
   than 25% against such a snapshot. *)

let harness_timings : (string * float) list ref = ref []

(* With --trace-out, observability is on: each experiment becomes a
   profiler phase, and its metrics snapshot-diff is summarised after
   the run (the same diff API the soak and the --check gate use). *)
let tracing = ref false
let exp_deltas : (string * Covirt_obs.Metrics.snapshot) list ref = ref []

let timed name f =
  let before =
    if !tracing then begin
      Covirt_obs.Profiler.set_phase name;
      Some (Covirt_obs.Metrics.snapshot ())
    end
    else None
  in
  let t0 = Unix.gettimeofday () in
  f ();
  harness_timings := (name, Unix.gettimeofday () -. t0) :: !harness_timings;
  Option.iter
    (fun before ->
      let delta =
        Covirt_obs.Metrics.diff ~before
          ~after:(Covirt_obs.Metrics.snapshot ())
      in
      exp_deltas := (name, delta) :: !exp_deltas)
    before

let print_obs_summary () =
  section "Observability summary (per experiment)";
  let t =
    Covirt_sim.Table.create
      ~columns:[ "experiment"; "vm exits"; "tlb miss"; "ept walk miss";
                 "fault reports" ]
  in
  List.iter
    (fun (name, d) ->
      let c n = string_of_int (Covirt_obs.Metrics.total_counter d n) in
      Covirt_sim.Table.add_row t
        [ name; c "vmexit.count"; c "tlb.lookup.miss"; c "ept.walk.miss";
          c "fault.report" ])
    (List.rev !exp_deltas);
  Covirt_sim.Table.print t

let experiments ~quick =
  [
    ("table1", run_table1);
    ("fig3", run_fig3 ~quick);
    ("fig4", run_fig4 ~quick);
    ("fig5", run_fig5 ~quick);
    ("fig6", run_fig6 ~quick);
    ("fig7", run_fig7 ~quick);
    ("fig8", run_fig8 ~quick);
    ("ablate-coalesce", run_ablate_coalesce ~quick);
    ("ablate-piv", run_ablate_piv);
    ("ablate-sync", run_ablate_sync ~quick);
    ("compare", run_compare ~quick);
    ("noise", run_noise);
    ("campaign", run_campaign ~quick);
    ("isolation", run_isolation ~quick);
    ("scale", run_scale ~quick);
    ("kernels", run_kernels);
    ("fleet", run_fleet ~quick);
    ("loadgen", run_loadgen ~quick);
    ("bechamel", run_bechamel);
  ]

let json_path = "BENCH_covirt.json"

let write_json ~quick =
  let oc = open_out json_path in
  let entries l =
    String.concat ",\n"
      (List.rev_map (fun (k, v) -> Printf.sprintf "    %S: %.6f" k v) l)
  in
  Printf.fprintf oc
    "{\n  \"schema\": \"covirt-bench/1\",\n  \"quick\": %b,\n" quick;
  Option.iter
    (fun s -> Printf.fprintf oc "  \"fleet_speedup\": %.3f,\n" s)
    !fleet_speedup;
  Option.iter
    (fun d -> Printf.fprintf oc "  \"fleet_domains\": %d,\n" d)
    !fleet_domains;
  Option.iter
    (fun p -> Printf.fprintf oc "  \"loadgen_p99_ns\": %.1f,\n" p)
    !loadgen_p99_ns;
  Printf.fprintf oc "  \"harness_wall_seconds\": {\n%s\n  },\n"
    (entries !harness_timings);
  Printf.fprintf oc "  \"minor_words_per_op\": {\n%s\n  },\n"
    (entries !micro_alloc);
  Printf.fprintf oc "  \"bechamel_ols_ns_per_op\": {\n%s\n  },\n"
    (entries !micro_ols);
  Printf.fprintf oc "  \"microbench_ns_per_op\": {\n%s\n  }\n}\n"
    (entries !micro_results);
  close_out oc;
  Format.printf "@.wrote %s@." json_path

let emit_baseline path =
  let oc = open_out path in
  Printf.fprintf oc "# harness wall-clock baseline (name<TAB>seconds)\n";
  List.iter (fun (n, s) -> Printf.fprintf oc "%s\t%.4f\n" n s)
    (List.rev !harness_timings);
  close_out oc;
  Format.printf "@.wrote baseline %s@." path

(* --gc-stats: persist the allocation measurements plus the process's
   end-of-run GC counters (CI uploads this file as an artifact, so a
   regression in allocation behaviour is visible without re-running). *)
let write_gc_stats path =
  let oc = open_out path in
  Printf.fprintf oc "# covirt bench GC stats\n";
  Printf.fprintf oc "backend\t%s\n" (if native then "native" else "bytecode");
  Printf.fprintf oc "# microbench minor words/op (gate * = must be 0)\n";
  List.iter
    (fun (n, w) -> Printf.fprintf oc "alloc\t%s\t%.6f\n" n w)
    (List.rev !micro_alloc);
  let s = Gc.quick_stat () in
  Printf.fprintf oc "gc\tminor_words\t%.0f\n" s.Gc.minor_words;
  Printf.fprintf oc "gc\tpromoted_words\t%.0f\n" s.Gc.promoted_words;
  Printf.fprintf oc "gc\tmajor_words\t%.0f\n" s.Gc.major_words;
  Printf.fprintf oc "gc\tminor_collections\t%d\n" s.Gc.minor_collections;
  Printf.fprintf oc "gc\tmajor_collections\t%d\n" s.Gc.major_collections;
  close_out oc;
  Format.printf "@.wrote GC stats %s@." path

let regression_threshold = 1.25
let check_floor_seconds = 0.05

let check_baseline path =
  let baseline = ref [] in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       if String.length line > 0 && line.[0] <> '#' then
         match String.index_opt line '\t' with
         | Some i ->
             let name = String.sub line 0 i in
             let secs =
               float_of_string
                 (String.sub line (i + 1) (String.length line - i - 1))
             in
             baseline := (name, secs) :: !baseline
         | None -> ()
     done
   with End_of_file -> close_in ic);
  let failures =
    List.filter_map
      (fun (name, base) ->
        if name = "loadgen_p99_ns" then
          (* Simulated-cycle figure, deterministic: gate it directly,
             no noise floor needed. *)
          match !loadgen_p99_ns with
          | Some cur when cur > regression_threshold *. base ->
              Some (name, base, cur)
          | _ -> None
        else if
          (* sub-floor entries are noise-dominated; skip them *)
          base < check_floor_seconds
        then None
        else
          match List.assoc_opt name !harness_timings with
          | Some cur when cur > regression_threshold *. base ->
              Some (name, base, cur)
          | _ -> None)
      !baseline
  in
  match failures with
  | [] ->
      Format.printf "@.bench --check: all harness wall-clocks within %.0f%%@."
        (100.0 *. (regression_threshold -. 1.0))
  | fs ->
      List.iter
        (fun (n, b, c) ->
          Format.eprintf "bench --check: REGRESSION %s: %.2fs -> %.2fs (+%.0f%%)@."
            n b c (100.0 *. (c -. b) /. b))
        fs;
      exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let json = List.mem "--json" args in
  Covirt_sim.Table.set_tsv_mode (List.mem "--tsv" args);
  let gc_stats_out : string option ref = ref None in
  let rec parse names check baseline_out trace_out = function
    | [] -> (List.rev names, check, baseline_out, trace_out)
    | "--check" :: path :: rest ->
        parse names (Some path) baseline_out trace_out rest
    | "--emit-baseline" :: path :: rest ->
        parse names check (Some path) trace_out rest
    | "--trace-out" :: path :: rest ->
        parse names check baseline_out (Some path) rest
    | "--gc-stats" :: path :: rest ->
        gc_stats_out := Some path;
        parse names check baseline_out trace_out rest
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            domains_arg := Some d;
            parse names check baseline_out trace_out rest
        | _ ->
            Format.eprintf "--domains needs a positive integer, got %S@." n;
            exit 1)
    | ("--check" | "--emit-baseline" | "--trace-out" | "--domains"
      | "--gc-stats") :: [] ->
        Format.eprintf
          "--check/--emit-baseline/--trace-out/--domains/--gc-stats need an \
           argument@.";
        exit 1
    | ("quick" | "--tsv" | "--json") :: rest ->
        parse names check baseline_out trace_out rest
    | a :: rest -> parse (a :: names) check baseline_out trace_out rest
  in
  let names, check, baseline_out, trace_out = parse [] None None None args in
  if trace_out <> None then begin
    tracing := true;
    Covirt_obs.enable ();
    Covirt_obs.Exporter.enable ()
  end;
  let table = experiments ~quick in
  (match names with
  | [] -> List.iter (fun (name, f) -> timed name f) table
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name table with
          | Some f -> timed name f
          | None ->
              Format.eprintf
                "unknown experiment %S (try: table1 fig3..fig8 \
                 ablate-coalesce ablate-piv ablate-sync fleet bechamel)@."
                name;
              exit 1)
        names);
  if json then write_json ~quick;
  Option.iter
    (fun path ->
      print_obs_summary ();
      Covirt_obs.Exporter.write_chrome_json ~path;
      Format.printf "@.wrote %d trace events to %s (%d dropped)@."
        (Covirt_obs.Exporter.length ()) path (Covirt_obs.Exporter.dropped ()))
    trace_out;
  Option.iter emit_baseline baseline_out;
  Option.iter write_gc_stats !gc_stats_out;
  (* The allocation gate is deterministic (no wall-clock noise), so it
     runs whenever the bechamel experiment did. *)
  check_alloc_gate ();
  Option.iter check_baseline check
