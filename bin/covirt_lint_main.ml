(* covirt-lint: thin CLI over the covirt.lint AST analysis engine.

   Usage: covirt-lint [ROOT] [--json FILE] [--dot FILE] [--list] [--quiet]

   ROOT defaults to "." and must contain lib/.  Exit codes: 0 clean,
   1 findings, 2 tool error (unparseable file, bad usage, missing
   tree).  --json and --dot write their artifacts before the exit
   status is decided, so CI can upload them from a failing gate. *)

let usage () =
  prerr_endline
    "usage: covirt-lint [ROOT] [--json FILE] [--dot FILE] [--list] [--quiet]";
  exit 2

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let () =
  let root = ref "." in
  let json_out = ref None in
  let dot_out = ref None in
  let quiet = ref false in
  let list_checks = ref false in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--dot" :: file :: rest ->
        dot_out := Some file;
        parse rest
    | "--quiet" :: rest ->
        quiet := true;
        parse rest
    | "--list" :: rest ->
        list_checks := true;
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | arg :: rest ->
        root := arg;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_checks then begin
    List.iter
      (fun (id, descr) -> Printf.printf "%-20s %s\n" id descr)
      Covirt_lint.Checks.catalogue;
    exit 0
  end;
  match Covirt_lint.Engine.run ~root:!root with
  | exception Covirt_lint.Engine.No_tree msg ->
      Printf.eprintf "lint: %s\n" msg;
      exit 2
  | result ->
      Option.iter
        (fun file -> write_file file (Covirt_lint.Engine.to_json result))
        !json_out;
      Option.iter
        (fun file -> write_file file (Covirt_lint.Engine.dot result))
        !dot_out;
      if not !quiet then
        Covirt_lint.Engine.pp_table Format.std_formatter result;
      exit (Covirt_lint.Engine.exit_code result)
