(* covirt-lint: the repo's source-convention gate.

   Purely line/regex-based — no ppx, no compiler-libs — so it stays
   cheap enough to run on every CI push.  Three checks:

   1. every module under lib/ has an interface (.mli next to the .ml);
   2. the hot layers (lib/hw, lib/core) never print to stdout/stderr
      directly — output goes through pp functions or the sim Table;
   3. observability emission calls (Metrics.add, Span.instant, ...) in the hot
      layers sit behind a [!Metrics.on] / [!Exporter.on] guard within
      the preceding few lines, preserving the zero-cost-when-off
      contract;
   4. domain spawning is the fleet's monopoly: [Domain.spawn] appears
      in lib/ only under lib/fleet, and lib/fleet never references
      [Covirt_hw] — shards must build hardware state through their
      body closures, so no mutable hardware type can cross a domain
      boundary behind the runner's back;
   5. the replay-trace codec is confined to lib/replay: no other lib
      layer references [Covirt_replay], and the trace magic literal
      appears only in lib/replay/trace.ml;
   6. warm regions — code between "(* warm-begin" and "(* warm-end *)"
      marker comments in the hot-path modules — stay allocation-free
      by construction: no List combinators, no Printf/Format, no
      Option.map/iter, and no closure literals ([fun]/[function], the
      textual proxy for partial application), so the bench allocation
      gate's zero-words/op claim is also enforceable statically.

   Usage: covirt_lint [ROOT]   (ROOT defaults to ".", must contain lib/) *)

let errors = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.printf "lint: %s\n" msg)
    fmt

(* --- tiny filesystem walk (stdlib only) --- *)

let rec walk dir f =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.iter
        (fun e ->
          let path = Filename.concat dir e in
          if Sys.is_directory path then (
            if e <> "_build" && e <> ".git" then walk path f)
          else f path)
        entries
  | exception Sys_error _ -> ()

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let has_suffix s suf =
  String.length s >= String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf)
     = suf

(* [find_sub line pat] — index of [pat] in [line], if any. *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some i
    else go (i + 1)
  in
  if m = 0 then None else go 0

let contains line pat = find_sub line pat <> None

(* A match counts as a call only if it is not part of a longer
   identifier: the preceding character must not be alphanumeric, '_',
   or '.' (so [Format.pp_print_string] does not trip "print_string"). *)
let contains_word line pat =
  match find_sub line pat with
  | None -> false
  | Some 0 -> true
  | Some i -> (
      match line.[i - 1] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> false
      | _ -> true)

(* --- check 1: every lib module has an interface --- *)

let check_mli root =
  walk
    (Filename.concat root "lib")
    (fun path ->
      if has_suffix path ".ml" then
        let mli = path ^ "i" in
        if not (Sys.file_exists mli) then
          fail "%s has no interface (%s missing)" path mli)

(* --- check 2: no direct printing in the hot layers --- *)

let print_patterns =
  [ "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "print_endline"; "print_string"; "prerr_endline"; "prerr_string" ]

let check_no_printing path lines =
  List.iteri
    (fun i line ->
      List.iter
        (fun pat ->
          if contains_word line pat then
            fail "%s:%d: direct output via %s (use a pp function or Table)"
              path (i + 1) pat)
        print_patterns)
    lines

(* --- check 3: obs emission guarded in the hot layers --- *)

let emission_patterns = [ "Metrics.add"; "Span.instant"; "Span.push" ]
let guard_patterns = [ "Metrics.on"; "Exporter.on"; "Sanitize.on" ]
let lookback = 25

let check_guards path lines =
  let arr = Array.of_list lines in
  Array.iteri
    (fun i line ->
      if List.exists (contains line) emission_patterns then begin
        let guarded = ref false in
        for j = max 0 (i - lookback) to i do
          if List.exists (contains arr.(j)) guard_patterns then guarded := true
        done;
        if not !guarded then
          fail
            "%s:%d: obs emission without a Metrics.on/Exporter.on guard \
             within %d lines"
            path (i + 1) lookback
      end)
    arr

(* --- check 4: the fleet's domain monopoly --- *)

(* Parallelism is confined to lib/fleet so the shard-determinism
   contract has one owner.  Two directions: nobody else under lib/
   spawns a domain, and the fleet itself never touches lib/hw (its
   shards receive hardware state only through closures they build). *)
let check_fleet_monopoly root =
  walk
    (Filename.concat root "lib")
    (fun path ->
      if has_suffix path ".ml" || has_suffix path ".mli" then begin
        let in_fleet = contains path "lib/fleet" in
        let lines = read_lines path in
        List.iteri
          (fun i line ->
            if (not in_fleet) && contains_word line "Domain.spawn" then
              fail
                "%s:%d: Domain.spawn outside lib/fleet (go through \
                 Covirt_fleet.Fleet)"
                path (i + 1);
            if in_fleet && contains_word line "Covirt_hw" then
              fail
                "%s:%d: lib/fleet must not reference Covirt_hw (hardware \
                 state stays shard-local)"
                path (i + 1))
          lines
      end)

(* --- check 5: the trace codec is confined to lib/replay --- *)

(* Replay traces are a versioned binary format with exactly one
   encoder/decoder: lib/replay/trace.ml.  Two directions: no other
   lib layer references [Covirt_replay] (the dependency points into
   replay from bin/ and test/ only, never between lib layers), and
   the magic literal never reappears — a second site writing the
   four magic bytes would be a second, drift-prone codec. *)
let trace_magic = "\"CV" ^ "RT\""

let check_trace_confinement root =
  walk
    (Filename.concat root "lib")
    (fun path ->
      if has_suffix path ".ml" || has_suffix path ".mli" then begin
        let in_replay = contains path "lib/replay" in
        List.iteri
          (fun i line ->
            if (not in_replay) && contains_word line "Covirt_replay" then
              fail
                "%s:%d: Covirt_replay referenced outside lib/replay (traces \
                 enter other layers only through bin/ and test/)"
                path (i + 1))
          (read_lines path)
      end);
  List.iter
    (fun dir ->
      walk (Filename.concat root dir) (fun path ->
          if
            (has_suffix path ".ml" || has_suffix path ".mli")
            && not (contains path "lib/replay/trace.ml")
          then
            List.iteri
              (fun i line ->
                if contains line trace_magic then
                  fail
                    "%s:%d: trace magic literal outside lib/replay/trace.ml \
                     (one codec only — go through Covirt_replay.Trace)"
                    path (i + 1))
              (read_lines path)))
    [ "lib"; "bin" ]

(* --- check 6: warm regions are allocation-free by construction --- *)

(* The modules whose warm paths carry the zero-GC contract (DESIGN.md
   §13).  Inside a warm region every allocation is a bug the bench
   gate would catch dynamically; this check catches the usual sources
   statically, at the line that introduces them. *)
let warm_files =
  [ "lib/hw/machine.ml"; "lib/hw/tlb.ml"; "lib/hw/ept.ml";
    "lib/hw/charge_memo.ml"; "lib/obs/metrics.ml" ]

let warm_begin = "(* warm-begin"
let warm_end = "(* warm-end *)"

(* Each pattern allocates on every evaluation: closure literals, list
   combinators (closure + output list), Option combinators (closure +
   [Some]), and formatted output (boxed format arguments). *)
let warm_banned =
  [ "fun "; "function"; "List.map"; "List.filter"; "List.fold_left";
    "List.iter"; "List.exists"; "List.concat"; "List.init"; "Array.map";
    "Array.iter"; "Array.fold_left"; "Array.to_list"; "Option.map";
    "Option.iter"; "Option.bind"; "Printf."; "Format."; "find_opt" ]

let check_warm_regions root =
  List.iter
    (fun rel ->
      let path = Filename.concat root rel in
      if Sys.file_exists path then begin
        let in_warm = ref false in
        let saw_region = ref false in
        List.iteri
          (fun i line ->
            if contains line warm_begin then begin
              in_warm := true;
              saw_region := true
            end;
            if !in_warm then
              List.iter
                (fun pat ->
                  if contains_word line pat then
                    fail
                      "%s:%d: %s inside a warm region (zero-allocation \
                       contract; hoist to module level or move past the \
                       warm-end marker)"
                      path (i + 1) pat)
                warm_banned;
            if contains line warm_end then in_warm := false)
          (read_lines path);
        if not !saw_region then
          fail
            "%s: no \"(* warm-begin\" marker — the hot-path module lost its \
             warm-region annotations"
            path
      end)
    warm_files

(* --- driver --- *)

let hot_layers = [ "lib/hw"; "lib/core" ]

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  if not (Sys.file_exists (Filename.concat root "lib")) then begin
    Printf.printf "lint: no lib/ under %s\n" root;
    exit 2
  end;
  check_mli root;
  check_fleet_monopoly root;
  check_trace_confinement root;
  check_warm_regions root;
  List.iter
    (fun layer ->
      walk
        (Filename.concat root layer)
        (fun path ->
          if has_suffix path ".ml" then begin
            let lines = read_lines path in
            check_no_printing path lines;
            check_guards path lines
          end))
    hot_layers;
  if !errors > 0 then begin
    Printf.printf "lint: %d problem(s)\n" !errors;
    exit 1
  end
  else print_endline "lint: clean"
