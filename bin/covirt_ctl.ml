(* covirt-ctl: command-line driver for the Covirt simulation stack.

   Subcommands:
     experiment  regenerate a table/figure from the paper
     faults      run the fault-injection tour
     demo        boot a protected enclave, run a workload, show status
     inspect     dump the machine/protection state of a demo run *)

open Cmdliner

(* --- shared arguments --- *)

let quick =
  let doc = "Use reduced problem sizes (seconds instead of minutes)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let domains =
  let doc =
    "Domains for the fleet-sharded harnesses (campaign, soak, sweeps). \
     Defaults to Domain.recommended_domain_count.  Placement only: any \
     value produces byte-identical results, only wall-clock changes."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let config_conv =
  let parse s =
    match List.assoc_opt s Covirt.Config.presets with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown config %S (expected: %s)" s
                (String.concat ", " (List.map fst Covirt.Config.presets))))
  in
  let print ppf c = Format.pp_print_string ppf (Covirt.Config.name c) in
  Arg.conv (parse, print)

let config =
  let doc =
    "Protection configuration: native, none, mem, ipi or mem+ipi."
  in
  Arg.(value & opt config_conv Covirt.Config.mem_ipi & info [ "config"; "c" ] ~doc)

(* --- experiment --- *)

let experiment_names =
  [ "table1"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8";
    "ablate-coalesce"; "ablate-piv"; "ablate-sync"; "compare"; "kernels";
    "noise"; "scale"; "campaign"; "isolation" ]

let run_experiment name quick domains =
  let open Covirt_harness in
  match name with
  | "table1" ->
      let t =
        Covirt_sim.Table.create
          ~columns:[ "Benchmark Name"; "Version"; "Parameters" ]
      in
      List.iter (fun (n, v, p) -> Covirt_sim.Table.add_row t [ n; v; p ])
        Experiments.table1;
      Covirt_sim.Table.print t;
      Ok ()
  | "fig3" ->
      let rows = Fig3.run ~quick ?domains () in
      Covirt_sim.Table.print (Fig3.table rows);
      Fig3.print_histograms rows;
      Ok ()
  | "fig4" ->
      Covirt_sim.Table.print (Fig4.table (Fig4.run ~quick ()));
      Ok ()
  | "fig5" ->
      let rows = Fig5.run ~quick ?domains () in
      Covirt_sim.Table.print (Fig5.stream_table rows);
      Covirt_sim.Table.print (Fig5.gups_table rows);
      Ok ()
  | "fig6" ->
      Covirt_sim.Table.print (Fig6.table (Fig6.run ~quick ()));
      Ok ()
  | "fig7" ->
      let rows = Fig7.run ~quick () in
      Covirt_sim.Table.print (Fig7.table rows);
      Format.printf "worst overhead: %.2f%%@." (100.0 *. Fig7.worst_overhead rows);
      Ok ()
  | "fig8" ->
      Covirt_sim.Table.print (Fig8.table (Fig8.run ~quick ()));
      Ok ()
  | "ablate-coalesce" ->
      Covirt_sim.Table.print
        (Ablate.coalescing_table (Ablate.coalescing ~quick ?domains ()));
      Ok ()
  | "ablate-piv" ->
      Covirt_sim.Table.print (Ablate.piv_table (Ablate.piv_vs_full ()));
      Ok ()
  | "ablate-sync" ->
      Covirt_sim.Table.print (Ablate.sync_table (Ablate.sync_vs_async ~quick ()));
      Ok ()
  | "compare" ->
      Covirt_sim.Table.print (Compare_virt.ipc_table (Compare_virt.ipc ()));
      Covirt_sim.Table.print
        (Compare_virt.sharing_table (Compare_virt.sharing ~quick ()));
      Ok ()
  | "kernels" ->
      Covirt_sim.Table.print (Kernels.table (Kernels.matrix ()));
      Ok ()
  | "noise" ->
      Covirt_sim.Table.print (Noise_compare.table (Noise_compare.run ()));
      Ok ()
  | "scale" ->
      Covirt_sim.Table.print (Scale.table (Scale.run ~quick ?domains ()));
      Ok ()
  | "campaign" ->
      Covirt_sim.Table.print
        (Campaign.table
           (Campaign.run ~trials:(if quick then 25 else 60) ?domains ()));
      Ok ()
  | "isolation" ->
      Covirt_sim.Table.print (Isolation.table (Isolation.run ~quick ()));
      Ok ()
  | other ->
      Error
        (Printf.sprintf "unknown experiment %S (expected: %s)" other
           (String.concat ", " experiment_names))

let experiment_cmd =
  let name_arg =
    let doc = "Experiment to run: table1, fig3..fig8 or ablate-*." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run name quick domains =
    match run_experiment name quick domains with
    | Ok () -> `Ok ()
    | Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper")
    Term.(ret (const run $ name_arg $ quick $ domains))

(* --- demo --- *)

let gib = Covirt_sim.Units.gib

let run_demo config cores verbose =
  let machine =
    Covirt_hw.Machine.create ~zones:2 ~cores_per_zone:5 ~mem_per_zone:(32 * gib)
      ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let covirt = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let core_ids = List.init cores (fun i -> i + 1) in
  match
    Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:"demo" ~cores:core_ids
      ~mem:[ (0, 7 * gib); (1, 7 * gib) ]
      ()
  with
  | Error e -> `Error (false, e)
  | Ok (enclave, kitten) ->
      Format.printf "booted %a under config %s@." Covirt_pisces.Enclave.pp
        enclave (Covirt.Config.name config);
      let ctxs =
        List.map
          (fun core -> Covirt_kitten.Kitten.context kitten ~core)
          (Covirt_kitten.Kitten.cores kitten)
      in
      (match Covirt_workloads.Stream.run ctxs ~elems:2_000_000 ~iters:3 () with
      | Ok r ->
          Format.printf "STREAM triad %.0f MB/s, copy %.0f MB/s@."
            r.Covirt_workloads.Stream.triad_mb_s
            r.Covirt_workloads.Stream.copy_mb_s
      | Error e -> Format.printf "stream failed: %s@." e);
      (match
         Covirt_workloads.Hpcg.run ctxs ~nominal_dim:64 ~real_dim:14
           ~iterations:20 ()
       with
      | Ok r ->
          Format.printf "HPCG %.3f GF/s, residual %.2e@."
            r.Covirt_workloads.Hpcg.gflops
            r.Covirt_workloads.Hpcg.final_residual
      | Error e -> Format.printf "hpcg failed: %s@." e);
      Format.printf "@.%s@." (Covirt.protection_summary covirt);
      if verbose then
        Format.printf "--- trace tail ---@.%a" Covirt_sim.Trace.pp
          machine.Covirt_hw.Machine.trace;
      `Ok ()

let demo_cmd =
  let cores =
    let doc = "Number of enclave cores (1-8)." in
    Arg.(value & opt int 4 & info [ "cores"; "n" ] ~doc)
  in
  let verbose =
    let doc = "Dump the machine trace at the end." in
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc)
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Boot a protected enclave, run workloads, print protection status")
    Term.(ret (const run_demo $ config $ cores $ verbose))

(* --- faults --- *)

let fault_names =
  [ "wild-host"; "wild-sibling"; "phantom"; "errant-ipi"; "msr"; "reset-port";
    "double-fault" ]

let run_fault name config =
  let open Covirt_kitten in
  let machine =
    Covirt_hw.Machine.create ~zones:2 ~cores_per_zone:3 ~mem_per_zone:(8 * gib)
      ()
  in
  let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
  let covirt = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
  let launch nm cs zone =
    match
      Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:nm ~cores:cs
        ~mem:[ (zone, 1 * gib) ] ()
    with
    | Ok pair -> pair
    | Error e -> failwith e
  in
  let attacker, attacker_kitten = launch "attacker" [ 1 ] 0 in
  let victim, _ = launch "victim" [ 3 ] 1 in
  let ctx = Kitten.context attacker_kitten ~core:1 in
  let mib = Covirt_sim.Units.mib in
  let inject () =
    match name with
    | "wild-host" -> Kitten.store_addr ctx (2 * mib)
    | "wild-sibling" ->
        let target =
          match Covirt_hw.Region.Set.to_list victim.Covirt_pisces.Enclave.memory with
          | r :: _ -> r.Covirt_hw.Region.base + mib
          | [] -> failwith "victim has no memory"
        in
        Kitten.store_addr ctx target
    | "phantom" ->
        let phantom = Covirt_hw.Region.make ~base:(6 * gib) ~len:(4 * mib) in
        Kitten.inject_phantom_region attacker_kitten phantom;
        Kitten.touch_believed_memory ctx phantom.Covirt_hw.Region.base
    | "errant-ipi" ->
        Kitten.send_ipi ctx ~dest:(Covirt_pisces.Enclave.bsp victim) ~vector:8
    | "msr" -> Kitten.wrmsr_sensitive ctx
    | "reset-port" -> Kitten.out_reset_port ctx
    | "double-fault" -> Kitten.trigger_double_fault ctx
    | other ->
        failwith
          (Printf.sprintf "unknown fault %S (expected: %s)" other
             (String.concat ", " fault_names))
  in
  let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
  (match Covirt_pisces.Pisces.run_guarded pisces inject with
  | exception Covirt_hw.Machine.Node_panic why ->
      Format.printf "NODE PANIC: %s@." why
  | exception Failure msg -> Format.printf "error: %s@." msg
  | Error crash ->
      Format.printf "contained: %a@." Covirt_pisces.Pisces.pp_crash crash
  | Ok () ->
      if Covirt.dropped_ipis covirt ~enclave_id:attacker.Covirt_pisces.Enclave.id > 0
      then Format.printf "errant operation dropped by the hypervisor@."
      else Format.printf "fault executed with no immediate effect@.");
  List.iter
    (fun r -> Format.printf "report: %a@." Covirt.Fault_report.pp r)
    (Covirt.reports covirt ~enclave_id:attacker.Covirt_pisces.Enclave.id);
  `Ok ()

let faults_cmd =
  let name_arg =
    let doc =
      "Fault to inject: wild-host, wild-sibling, phantom, errant-ipi, msr, \
       reset-port or double-fault."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAULT" ~doc)
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"Inject a fault and report what happened")
    Term.(ret (const run_fault $ name_arg $ config))

(* --- analyze --- *)

let corrupt_names = [ "cross-owner"; "free-map"; "stale-grant"; "freed-access" ]

(* Each corruption class maps to the typed violation the sanitizer must
   produce for it.  The static verifier and the shadow sanitizer overlap
   on EPT corruption (one sees the stale table, the other the write), so
   either typed form counts as detection for those classes. *)
let detects corrupt (v : Covirt_analysis.Violation.t) =
  let open Covirt_analysis.Violation in
  match (corrupt, v.kind) with
  | "cross-owner", (Cross_owner_mapping _ | Shadow_corrupt_mapping _) -> true
  | "free-map", (Unbacked_mapping | Shadow_corrupt_mapping _) -> true
  | "stale-grant", Stale_grant _ -> true
  | "freed-access", Shadow_freed_access -> true
  | _ -> false

(* analyze --campaign: the statistical form of the same question.  The
   randomized fault campaign runs under the shadow sanitizer, sharded
   over the fleet; the flagged column counts trials in which the
   analyzer detected an ownership violation as it happened. *)
let run_analyze_campaign trials seed domains =
  let open Covirt_harness in
  let rows = Campaign.run ~trials ~seed ~sanitize:true ?domains () in
  Covirt_sim.Table.print (Campaign.table rows);
  let flagged =
    List.fold_left (fun acc r -> acc + r.Campaign.sanitizer_flagged) 0 rows
  in
  Format.printf
    "campaign: %d trials x %d configs, sanitizer flagged %d trial-config \
     pairs@."
    trials (List.length rows) flagged;
  `Ok ()

let run_analyze sanitize json_out corrupt =
  let open Covirt_analysis in
  let mib = Covirt_sim.Units.mib in
  match corrupt with
  | Some c when not (List.mem c corrupt_names) ->
      `Error
        ( false,
          Printf.sprintf "unknown corruption %S (expected: %s)" c
            (String.concat ", " corrupt_names) )
  | _ -> (
      (* The freed-access demo needs accesses to reach memory (EPT
         enforcement would suppress the stale store before the shadow
         sees it), so it runs unprotected with the sanitizer armed. *)
      let needs_shadow = sanitize || corrupt = Some "freed-access" in
      let base_config =
        if corrupt = Some "freed-access" then Covirt.Config.none
        else Covirt.Config.full
      in
      let config = { base_config with Covirt.Config.sanitize = needs_shadow } in
      let machine =
        Covirt_hw.Machine.create ~zones:2 ~cores_per_zone:3
          ~mem_per_zone:(8 * gib) ()
      in
      let hobbes = Covirt_hobbes.Hobbes.create machine ~host_core:0 in
      let ctrl = Covirt.enable (Covirt_hobbes.Hobbes.pisces hobbes) ~config in
      let run () =
        let launch nm cs zone =
          match
            Covirt_hobbes.Hobbes.launch_enclave hobbes ~name:nm ~cores:cs
              ~mem:[ (zone, 1 * gib) ] ()
          with
          | Ok pair -> pair
          | Error e -> failwith e
        in
        let alpha, alpha_kitten = launch "alpha" [ 1; 2 ] 0 in
        let beta, _ = launch "beta" [ 4 ] 1 in
        let first_region (e : Covirt_pisces.Enclave.t) =
          match Covirt_hw.Region.Set.to_list e.Covirt_pisces.Enclave.memory with
          | r :: _ -> r
          | [] -> failwith "enclave has no memory"
        in
        (* A legitimate cross-enclave share and doorbell pair: the
           verifier must bless these, not flag them. *)
        let xemem = Covirt_hobbes.Hobbes.xemem hobbes in
        let share =
          let r = first_region alpha in
          Covirt_hw.Region.make ~base:r.Covirt_hw.Region.base ~len:(2 * mib)
        in
        (match
           Covirt_xemem.Xemem.export xemem
             ~exporter:
               (Covirt_xemem.Name_service.Enclave_export
                  alpha.Covirt_pisces.Enclave.id)
             ~name:"analyze-share" ~pages:[ share ]
         with
        | Ok _ -> ()
        | Error e -> failwith e);
        (match Covirt_xemem.Xemem.attach xemem beta ~name:"analyze-share" with
        | Ok _ -> ()
        | Error e -> failwith e);
        (match Covirt_hobbes.Hobbes.grant_vector_pair hobbes alpha beta with
        | Ok _ -> ()
        | Error e -> failwith e);
        (* Real traffic so the shadow sanitizer has accesses to check. *)
        let ctxs =
          List.map
            (fun core -> Covirt_kitten.Kitten.context alpha_kitten ~core)
            (Covirt_kitten.Kitten.cores alpha_kitten)
        in
        (match Covirt_workloads.Stream.run ctxs ~elems:200_000 ~iters:2 () with
        | Ok _ -> ()
        | Error e -> failwith e);
        let instance_of (e : Covirt_pisces.Enclave.t) =
          match
            Covirt.Controller.instance_for ctrl
              ~enclave_id:e.Covirt_pisces.Enclave.id
          with
          | Some i -> i
          | None -> failwith "enclave has no controller instance"
        in
        let ept_of inst =
          match inst.Covirt.Controller.ept_mgr with
          | Some mgr -> Covirt.Ept_manager.ept mgr
          | None -> failwith "no EPT under this configuration"
        in
        (match corrupt with
        | None -> ()
        | Some "cross-owner" ->
            (* Alpha's EPT suddenly maps a window of beta's memory. *)
            let r = first_region beta in
            Covirt_hw.Ept.map_region
              (ept_of (instance_of alpha))
              (Covirt_hw.Region.make ~base:r.Covirt_hw.Region.base
                 ~len:(4 * mib))
        | Some "free-map" ->
            (* Map a region that belongs to nobody: carve it from the
               free pool, release it, then wire it into alpha's EPT. *)
            let mem = machine.Covirt_hw.Machine.mem in
            let r =
              match
                Covirt_hw.Phys_mem.alloc mem ~owner:Covirt_hw.Owner.Host
                  ~zone:1 ~len:(4 * mib)
              with
              | Ok r -> r
              | Error e -> failwith e
            in
            Covirt_hw.Phys_mem.release mem r;
            Covirt_hw.Ept.map_region (ept_of (instance_of alpha)) r
        | Some "stale-grant" ->
            (* Grant a doorbell towards a core no live enclave owns. *)
            Covirt.Whitelist.grant (instance_of alpha).Covirt.Controller.whitelist
              ~vector:0xd1 ~dest:5
        | Some "freed-access" ->
            (* Hot-add memory, hot-remove it, then touch the stale
               address: only the shadow sanitizer can see this one. *)
            let pisces = Covirt_hobbes.Hobbes.pisces hobbes in
            let r =
              match
                Covirt_pisces.Pisces.add_memory pisces alpha ~zone:0
                  ~len:(4 * mib)
              with
              | Ok r -> r
              | Error e -> failwith e
            in
            (match Covirt_pisces.Pisces.remove_memory pisces alpha r with
            | Ok () -> ()
            | Error e -> failwith e);
            let ctx = Covirt_kitten.Kitten.context alpha_kitten ~core:1 in
            (match
               Covirt_pisces.Pisces.run_guarded pisces (fun () ->
                   Covirt_kitten.Kitten.store_addr ctx
                     (r.Covirt_hw.Region.base + 64))
             with
            | Ok () | Error _ -> ())
        | Some _ -> assert false);
        let report =
          Verifier.run ~registry:(Covirt_xemem.Xemem.registry xemem) ctrl
        in
        let shadow_vs = if Shadow.active () then Shadow.violations () else [] in
        if report.Verifier.violations <> [] then
          Covirt_sim.Table.print (Verifier.table report);
        Format.printf
          "static verifier: %d enclave(s), %d EPT leaves, %d grant(s) checked, \
           %d violation(s)@."
          report.Verifier.enclaves_checked report.Verifier.leaves_checked
          report.Verifier.grants_checked
          (List.length report.Verifier.violations);
        if needs_shadow then begin
          let s = Shadow.stats () in
          Format.printf
            "shadow sanitizer: %d accesses, %d EPT writes, %d TLB installs \
             checked, %d violation(s)@."
            s.accesses s.ept_writes s.tlb_installs (List.length shadow_vs);
          if shadow_vs <> [] then Covirt_sim.Table.print (Shadow.table ())
        end;
        Option.iter
          (fun path ->
            let oc = open_out path in
            if needs_shadow then
              Printf.fprintf oc {|{"verifier":%s,"shadow":%s}|}
                (Verifier.to_json report) (Shadow.to_json ())
            else output_string oc (Verifier.to_json report);
            close_out oc;
            Format.printf "wrote JSON report to %s@." path)
          json_out;
        let all = report.Verifier.violations @ shadow_vs in
        match corrupt with
        | None ->
            if all = [] then begin
              Format.printf "isolation verified: no violations@.";
              `Ok ()
            end
            else
              `Error
                ( false,
                  Printf.sprintf "%d isolation violation(s) detected"
                    (List.length all) )
        | Some c ->
            if List.exists (detects c) all then begin
              Format.printf "injected corruption %S detected as expected@." c;
              `Ok ()
            end
            else
              `Error
                ( false,
                  Printf.sprintf "injected corruption %S was NOT detected" c )
      in
      let result = try run () with Failure msg -> `Error (false, msg) in
      if needs_shadow then Shadow.release ();
      result)

let analyze_cmd =
  let sanitize =
    let doc =
      "Also arm the shadow sanitizer: mirror every EPT write, TLB install \
       and translated access into a shadow ownership map and report \
       boundary crossings as they happen."
    in
    Arg.(value & flag & info [ "sanitize" ] ~doc)
  in
  let json_out =
    let doc = "Write the full violation report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let corrupt =
    let doc =
      "Inject a known corruption before verifying and require its typed \
       violation to be detected: cross-owner, free-map, stale-grant or \
       freed-access."
    in
    Arg.(value & opt (some string) None & info [ "corrupt" ] ~docv:"CLASS" ~doc)
  in
  let campaign =
    let doc =
      "Instead of a single stack, run the randomized fault-injection \
       campaign under the shadow sanitizer, sharded over the fleet \
       (see --domains)."
    in
    Arg.(value & flag & info [ "campaign" ] ~doc)
  in
  let trials =
    let doc = "Trials per configuration for --campaign." in
    Arg.(value & opt int 60 & info [ "trials"; "t" ] ~doc)
  in
  let seed =
    let doc = "Seed for --campaign." in
    Arg.(value & opt int 2026 & info [ "seed"; "s" ] ~doc)
  in
  let dispatch sanitize json_out corrupt campaign trials seed domains =
    if campaign then run_analyze_campaign trials seed domains
    else run_analyze sanitize json_out corrupt
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Boot a protected two-enclave stack with a XEMEM share, then run \
          the static isolation verifier (EPT leaves vs ownership, whitelist \
          grants vs live cores) and optionally the shadow sanitizer; or, \
          with --campaign, the randomized sanitized fault campaign")
    Term.(
      ret
        (const dispatch $ sanitize $ json_out $ corrupt $ campaign $ trials
       $ seed $ domains))

(* --- stats --- *)

let run_stats quick seed trace_out jsonl_out =
  let open Covirt_obs in
  (* Metrics + profiler always; span collection only when an export
     path was requested (spans are the bulkier stream). *)
  enable ();
  if trace_out <> None || jsonl_out <> None then Exporter.enable ();
  reset ();
  Profiler.set_phase "boot";
  let rows = Covirt_harness.Fig3.run ~quick ~seed () in
  Format.printf "figure-3 run (Selfish-Detour noise per configuration):@.";
  Covirt_sim.Table.print (Covirt_harness.Fig3.table rows);
  let snap = Metrics.snapshot () in
  (* Per-exit-reason counts and latency quantiles, merged across
     enclaves and CPUs.  Cycles are simulated TSC cycles; the µs column
     uses the stock 1.7 GHz model clock. *)
  let reasons = Metrics.dims snap "vmexit.cycles" in
  if reasons = [] then
    Format.printf "@.no VM exits recorded (native-only run?)@."
  else begin
    Format.printf "@.VM exits by reason (latency in simulated cycles):@.";
    let t =
      Covirt_sim.Table.create
        ~columns:
          [ "exit reason"; "exits"; "p50"; "p95"; "p99"; "max"; "p50 (us)" ]
    in
    List.iter
      (fun reason ->
        match Metrics.merged_hist snap "vmexit.cycles" ~dim:reason with
        | None -> ()
        | Some h ->
            let q p = Metrics.Hist.quantile h ~p in
            Covirt_sim.Table.add_row t
              [
                reason;
                string_of_int h.Metrics.Hist.n;
                Covirt_sim.Table.cell_f (q 50.);
                Covirt_sim.Table.cell_f (q 95.);
                Covirt_sim.Table.cell_f (q 99.);
                Covirt_sim.Table.cell_f h.Metrics.Hist.max_v;
                Covirt_sim.Table.cell_f (q 50. /. 1700.);
              ])
      reasons;
    Covirt_sim.Table.print t
  end;
  Format.printf "@.%s@." (Profiler.attribution_table ());
  Format.printf "@.%s@." (Profiler.phase_table ());
  Format.printf "@.translation and enforcement counters:@.";
  let t = Covirt_sim.Table.create ~columns:[ "counter"; "value" ] in
  List.iter
    (fun name ->
      Covirt_sim.Table.add_row t
        [ name; string_of_int (Metrics.total_counter snap name) ])
    [
      "tlb.lookup.hit"; "tlb.lookup.miss"; "tlb.flush"; "ept.walk.hit";
      "ept.walk.miss"; "ept.violation"; "ept.entry_writes"; "ipi.filter";
      "fault.report";
    ];
  Covirt_sim.Table.print t;
  Option.iter
    (fun path ->
      Exporter.write_chrome_json ~path;
      Format.printf "@.wrote %d trace events to %s (load in Perfetto or \
                     chrome://tracing)@."
        (Exporter.length ()) path)
    trace_out;
  Option.iter
    (fun path ->
      Exporter.write_jsonl ~path;
      Format.printf "wrote %d trace events to %s (JSONL)@."
        (Exporter.length ()) path)
    jsonl_out;
  `Ok ()

let stats_cmd =
  let seed =
    let doc = "Simulation seed for the figure-3 run." in
    Arg.(value & opt int 42 & info [ "seed"; "s" ] ~doc)
  in
  let trace_out =
    let doc = "Write a Chrome trace_event JSON file (Perfetto-loadable)." in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let jsonl_out =
    let doc = "Write the trace as one JSON event per line." in
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run the figure-3 sweep with observability enabled and print \
          per-exit-reason counts, latency quantiles and cycle attribution")
    Term.(ret (const run_stats $ quick $ seed $ trace_out $ jsonl_out))

(* --- supervise --- *)

(* Quarantine archival for --capture-dir: at the instant a shard's
   circuit breaker trips, drain that shard's recorder ring into a
   soak-shard trace (the trailing exit window leading up to the
   failure) with a JSON ledger sidecar.  The hook runs inside the
   shard's domain; the recorder is armed around each shard body by
   [shard_wrap]. *)
let mkdir_p dir =
  let rec go d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  go dir

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quarantine_capture ~dir ~sanitize ~shard_seed ~lo ~hi ~name ~why =
  let open Covirt_replay in
  let events, dropped = Recorder.capture () in
  let trace =
    Trace.make ~dropped
      ~scenario:(Trace.Soak_shard { seed = shard_seed; lo; hi; sanitize })
      events
  in
  let path =
    Filename.concat dir (Printf.sprintf "quarantine-%s-%d.trace" name shard_seed)
  in
  Trace.to_file trace ~path;
  let oc = open_out (path ^ ".json") in
  Printf.fprintf oc
    "{\"enclave\":\"%s\",\"why\":\"%s\",\"shard_seed\":%d,\"trials\":[%d,%d],\n\
    \ \"events\":%d,\"dropped\":%d,\"trace\":\"%s\",\"digest\":\"%s\"}\n"
    (json_escape name) (json_escape why) shard_seed (lo + 1) hi
    (List.length events) dropped (json_escape path) (Trace.digest trace);
  close_out oc;
  Some path

let run_supervise trials seed timeline sanitize shards domains capture_dir =
  let open Covirt_resilience in
  let r =
    match capture_dir with
    | None -> Soak.run ~trials ~seed ~sanitize ~shards ?domains ()
    | Some dir ->
        mkdir_p dir;
        let open Covirt_replay in
        Soak.run ~trials ~seed ~sanitize ~shards ?domains
          ~shard_wrap:(fun body ->
            Recorder.arm ();
            Fun.protect ~finally:(fun () -> Recorder.disarm ()) body)
          ~on_trial:Recorder.set_slot
          ~on_quarantine:(quarantine_capture ~dir ~sanitize)
          ()
  in
  Covirt_sim.Table.print (Soak.table r);
  if r.Soak.quarantined <> [] then begin
    Format.printf "@.quarantine ledger:@.";
    List.iter
      (fun (name, why) -> Format.printf "  %s: %s@." name why)
      r.Soak.quarantined
  end;
  if timeline then begin
    Format.printf "@.recovery timeline:@.";
    List.iter
      (fun e -> Format.printf "  %a@." Supervisor.pp_event e)
      r.Soak.timeline
  end
  else
    Format.printf "@.%d timeline events (rerun with --timeline to list them)@."
      (List.length r.Soak.timeline);
  if r.Soak.budget_respected && r.Soak.sibling_unperturbed then begin
    Format.printf
      "soak passed: every recovery stayed within budget and the sibling's \
       solve was untouched@.";
    `Ok ()
  end
  else `Error (false, "soak failed: see the table above")

let supervise_cmd =
  let trials =
    let doc = "Fault-injection trials to run against the supervised pair." in
    Arg.(value & opt int 200 & info [ "trials"; "t" ] ~doc)
  in
  let seed =
    let doc = "Seed for the fault stream and backoff jitter." in
    Arg.(value & opt int 2026 & info [ "seed"; "s" ] ~doc)
  in
  let timeline =
    let doc = "Print the full recovery timeline." in
    Arg.(value & flag & info [ "timeline" ] ~doc)
  in
  let sanitize =
    let doc =
      "Run the whole soak under the shadow sanitizer and report how many \
       trials it flagged."
    in
    Arg.(value & flag & info [ "sanitize" ] ~doc)
  in
  let shards =
    let doc =
      "Cut the trial range into this many shards, each soaked on its own \
       machine stack.  Part of the experiment's identity: a different \
       shard count is a different (equally valid) experiment."
    in
    Arg.(value & opt int 8 & info [ "shards" ] ~doc)
  in
  let capture_dir =
    let doc =
      "Archive each quarantine as it happens: the trailing VM-exit window \
       (a replayable soak-shard trace) plus a JSON ledger sidecar, written \
       into this directory.  The archive paths appear in the result table."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "capture-dir" ] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Run the supervised soak: inject faults and wedges into two worker \
          enclaves, let the supervisor and watchdog recover them, and check \
          an untouched sibling")
    Term.(
      ret
        (const run_supervise $ trials $ seed $ timeline $ sanitize $ shards
       $ domains $ capture_dir))

(* --- record / replay / fuzz --- *)

let print_scenario_report (r : Covirt_replay.Scenario.report) =
  let open Covirt_replay in
  List.iter
    (fun (tr : Scenario.trial_result) ->
      if
        tr.Scenario.crash <> None
        || tr.Scenario.planted <> []
        || tr.Scenario.outcome <> Scenario.Survived
      then begin
        Format.printf "  trial %d: %s" tr.Scenario.slot
          (Scenario.outcome_name tr.Scenario.outcome);
        (match tr.Scenario.crash with
        | Some e -> Format.printf " CRASH %s" e
        | None -> ());
        if tr.Scenario.planted <> [] then
          Format.printf " planted [%s] detected [%s]"
            (String.concat "," (List.map Trace.corruption_name tr.Scenario.planted))
            (String.concat ","
               (List.map Trace.corruption_name tr.Scenario.detected));
        Format.printf "@."
      end)
    r.Scenario.results;
  Format.printf "sanitizer flags: %d, crashes: %d@." r.Scenario.sanitizer_flags
    (List.length r.Scenario.crashes)

let run_record config seed trials out =
  let open Covirt_replay in
  let had_request = Covirt_hw.Sanitize.requested () in
  let report = Scenario.record ~config ~seed ~trials () in
  if not had_request then Covirt_hw.Sanitize.release ();
  Trace.to_file report.Scenario.trace ~path:out;
  Format.printf "%a@.recorded to %s@." Trace.pp_summary report.Scenario.trace
    out;
  print_scenario_report report;
  `Ok ()

let run_replay path minimize out verify preserve_cov =
  let open Covirt_replay in
  match Trace.of_file ~path with
  | Error why -> `Error (false, Printf.sprintf "%s: %s" path why)
  | Ok trace -> (
      Format.printf "%a@." Trace.pp_summary trace;
      let had_request = Covirt_hw.Sanitize.requested () in
      let finish v =
        if not had_request then Covirt_hw.Sanitize.release ();
        v
      in
      if minimize then begin
        (* With --preserve-coverage the edges the full trace covers are
           measured once, then every reduction must keep covering them
           (in addition to whatever the keep predicate demands). *)
        let preserve_edges =
          if not preserve_cov then None
          else begin
            Coverage.arm ();
            ignore (Coverage.capture () : Coverage.t);
            ignore (Replayer.run trace : Scenario.report);
            let c = Coverage.capture () in
            Coverage.disarm ();
            Format.printf "preserving %d covered edges@." (Coverage.count c);
            Some c
          end
        in
        let minimized, stats = Minimizer.minimize ?preserve_edges trace in
        let out = match out with Some o -> o | None -> path ^ ".min" in
        Trace.to_file minimized ~path:out;
        Format.printf
          "minimized %d -> %d events, %d -> %d trials in %d probes -> %s@."
          stats.Minimizer.original_events stats.Minimizer.minimized_events
          stats.Minimizer.original_trials stats.Minimizer.minimized_trials
          stats.Minimizer.probes out;
        finish (`Ok ())
      end
      else if verify then begin
        let v = Replayer.verify trace in
        print_scenario_report v.Replayer.report;
        Format.printf "replay fixed point: %b, matches original: %b@."
          v.Replayer.replay_identical v.Replayer.matches_original;
        if v.Replayer.replay_identical then finish (`Ok ())
        else
          finish
            (`Error
              (false, "replay is not a fixed point: determinism bug"))
      end
      else begin
        let report = Replayer.run trace in
        print_scenario_report report;
        (match out with
        | Some o ->
            Trace.to_file report.Scenario.trace ~path:o;
            Format.printf "re-captured trace written to %s@." o
        | None -> ());
        finish (`Ok ())
      end)

let exec_spread per_shard =
  match per_shard with
  | [] -> (0, 0)
  | (_, e0) :: rest ->
      List.fold_left (fun (lo, hi) (_, e) -> (min lo e, max hi e)) (e0, e0) rest

let run_fuzz trials seed mutations domains seconds corpus known coverage
    coverage_json =
  let open Covirt_replay in
  (* --coverage-json implies guidance: the artifact is meaningless
     without the taps armed. *)
  let coverage = coverage || coverage_json <> None in
  (* A known crash is one whose exception signature a checked-in
     reproducer already replays to — digests won't do, since a
     minimized trace embeds its scenario seed and the same bug found
     under a different fuzz seed digests differently. *)
  let known_signatures =
    match known with
    | None -> []
    | Some dir when Sys.file_exists dir && Sys.is_directory dir ->
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> Filename.check_suffix f ".trace")
        |> List.concat_map (fun f ->
               match Trace.of_file ~path:(Filename.concat dir f) with
               | Ok t ->
                   List.map snd (Replayer.run t).Scenario.crashes
               | Error _ -> [])
        |> List.sort_uniq compare
    | Some _ -> []
  in
  (* The adaptive corpus: entries loaded here seed the mutation bases
     and the coverage baseline; mutants the guided run promotes are
     persisted back and feed the following batches.  A malformed entry
     fails the load with a typed error rather than being skipped. *)
  match
    match corpus with None -> Ok [] | Some dir -> Corpus.load ~dir
  with
  | Error why -> `Error (false, Printf.sprintf "corpus: %s" why)
  | Ok initial_entries ->
      let entries = ref initial_entries in
      let run_batch ~trials ~seed =
        let r =
          Fuzzer.run ~trials ~seed ~mutations ?domains ~corpus:!entries
            ~coverage ()
        in
        if coverage && r.Fuzzer.promoted <> [] then begin
          (match corpus with
          | Some dir ->
              List.iter
                (fun e -> ignore (Corpus.save ~dir e : string))
                r.Fuzzer.promoted
          | None -> ());
          entries := !entries @ r.Fuzzer.promoted
        end;
        r
      in
      let results =
        match seconds with
        | None -> [ run_batch ~trials ~seed ]
        | Some budget ->
            (* Time-boxed mode for CI: fixed-size batches, each
               internally deterministic (batch seeds derive from the
               base seed), run until the wall-clock budget is spent. *)
            let deadline = Unix.gettimeofday () +. float_of_int budget in
            let batch = max 1 (min trials 24) in
            let rec go i acc =
              if Unix.gettimeofday () >= deadline && acc <> [] then
                List.rev acc
              else
                let r =
                  run_batch ~trials:batch
                    ~seed:(Covirt_sim.Rng.split_seed ~seed ~index:i)
                in
                if Unix.gettimeofday () >= deadline then List.rev (r :: acc)
                else go (i + 1) (r :: acc)
            in
            go 0 []
      in
      List.iter (fun r -> Covirt_sim.Table.print (Fuzzer.table r)) results;
      (* Time-boxed summary: one row per batch with its mutant and
         exec counts (and, guided, its coverage growth), so a CI log
         shows where the budget went shard by shard. *)
      (match seconds with
      | None -> ()
      | Some _ ->
          let t =
            Covirt_sim.Table.create
              ~columns:
                [
                  "batch"; "seed"; "mutants"; "execs"; "execs/shard";
                  "new edges"; "corpus";
                ]
          in
          List.iteri
            (fun i (r : Fuzzer.result) ->
              let lo, hi = exec_spread r.Fuzzer.execs_per_shard in
              Covirt_sim.Table.add_row t
                [
                  string_of_int i;
                  string_of_int r.Fuzzer.seed;
                  string_of_int r.Fuzzer.trials;
                  string_of_int r.Fuzzer.execs;
                  Printf.sprintf "%d..%d" lo hi;
                  string_of_int r.Fuzzer.new_edges;
                  string_of_int r.Fuzzer.corpus_size;
                ])
            results;
          Covirt_sim.Table.print t);
      let crashes =
        List.fold_left
          (fun acc (r : Fuzzer.result) ->
            List.fold_left
              (fun acc (f : Fuzzer.finding) ->
                if
                  List.exists
                    (fun f' -> f'.Fuzzer.digest = f.Fuzzer.digest)
                    acc
                then acc
                else acc @ [ f ])
              acc r.Fuzzer.crashes)
          [] results
      in
      let divergences =
        List.fold_left
          (fun a (r : Fuzzer.result) -> a + r.Fuzzer.divergences)
          0 results
      in
      (match corpus with
      | Some dir ->
          mkdir_p dir;
          List.iter
            (fun (f : Fuzzer.finding) ->
              let path =
                Filename.concat dir
                  ("crash-" ^ String.sub f.Fuzzer.digest 0 16 ^ ".trace")
              in
              Trace.to_file f.Fuzzer.trace ~path;
              Format.printf "corpus: %s (%s)@." path f.Fuzzer.exn)
            crashes
      | None -> ());
      (* The coverage-summary artifact CI uploads next to the corpus. *)
      (match coverage_json with
      | None -> ()
      | Some path ->
          let final_cov =
            List.fold_left
              (fun acc (r : Fuzzer.result) ->
                match r.Fuzzer.coverage with
                | Some c -> Coverage.union acc c
                | None -> acc)
              Coverage.empty results
          in
          let promoted =
            List.fold_left
              (fun a (r : Fuzzer.result) -> a + List.length r.Fuzzer.promoted)
              0 results
          in
          let execs =
            List.fold_left
              (fun a (r : Fuzzer.result) -> a + r.Fuzzer.execs)
              0 results
          in
          let oc = open_out path in
          Printf.fprintf oc
            "{\"edges\":%d,\"edges_total\":%d,\"corpus_size\":%d,\n\
            \ \"promoted\":%d,\"execs\":%d,\"batches\":%d}\n"
            (Coverage.count final_cov) Coverage.total (List.length !entries)
            promoted execs (List.length results);
          close_out oc;
          Format.printf "coverage summary written to %s@." path);
      let fresh =
        List.filter
          (fun (f : Fuzzer.finding) ->
            not (List.mem f.Fuzzer.exn known_signatures))
          crashes
      in
      if divergences > 0 then
        `Error (false, "replay divergence detected: determinism bug")
      else if fresh <> [] && known <> None then
        `Error
          ( false,
            Printf.sprintf
              "%d new crash reproducer(s) not in the known set — minimize \
               and check them in"
              (List.length fresh) )
      else `Ok ()

let record_cmd =
  let config =
    let doc =
      "Protection config for the recorded batch (a preset or \"full\")."
    in
    Arg.(value & opt string "full" & info [ "config"; "c" ] ~doc)
  in
  let seed =
    let doc = "Batch seed; per-trial seeds split off it." in
    Arg.(value & opt int 2026 & info [ "seed"; "s" ] ~doc)
  in
  let trials =
    let doc = "Trials (slots) to record." in
    Arg.(value & opt int 4 & info [ "trials"; "t" ] ~doc)
  in
  let out =
    let doc = "Output trace file." in
    Arg.(value & opt string "covirt.trace" & info [ "out"; "o" ] ~doc)
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Record a fault-injection trial batch into a replayable binary \
          trace (VM exits, injected faults, seeds and schedule)")
    Term.(ret (const run_record $ config $ seed $ trials $ out))

let replay_cmd =
  let trace =
    let doc = "The trace file to replay." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let minimize =
    let doc = "Delta-debug the trace to a minimal crashing reproducer." in
    Arg.(value & flag & info [ "minimize" ] ~doc)
  in
  let out =
    let doc = "Write the re-captured (or minimized) trace here." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~doc)
  in
  let verify =
    let doc =
      "Replay twice and require the re-captures to be byte-identical (the \
       replay fixed point); nonzero exit on divergence."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let preserve_cov =
    let doc =
      "With --minimize: measure the coverage edges the full trace reaches \
       and reject any reduction that stops covering them."
    in
    Arg.(value & flag & info [ "preserve-coverage" ] ~doc)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded trace bit-identically, with the crash, \
          sanitizer and verifier oracles armed")
    Term.(
      ret (const run_replay $ trace $ minimize $ out $ verify $ preserve_cov))

let fuzz_cmd =
  let trials =
    let doc = "Fuzz trials; one mutated trace replayed per trial." in
    Arg.(value & opt int 100 & info [ "trials"; "t" ] ~doc)
  in
  let seed =
    let doc = "Fuzz seed; every mutation derives from it." in
    Arg.(value & opt int 2026 & info [ "seed"; "s" ] ~doc)
  in
  let mutations =
    let doc = "Maximum mutation operators applied per trace." in
    Arg.(value & opt int 3 & info [ "mutations" ] ~doc)
  in
  let seconds =
    let doc =
      "Time-box: run deterministic batches until this many seconds elapse \
       (the CI fuzz-smoke mode) instead of a single fixed-size run."
    in
    Arg.(value & opt (some int) None & info [ "seconds" ] ~doc)
  in
  let corpus =
    let doc =
      "The adaptive corpus directory: coverage-earning entries are loaded \
       as mutation bases, mutants that reach new coverage are promoted \
       back into it (with --coverage), and minimized crash reproducers \
       are written next to them."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let known =
    let doc =
      "Directory of known (checked-in) reproducers; any crash whose \
       minimized digest is not in it fails the run."
    in
    Arg.(value & opt (some string) None & info [ "known" ] ~docv:"DIR" ~doc)
  in
  let coverage =
    let doc =
      "Coverage-guided mode: arm the coverage taps, promote mutants that \
       reach new edges into the corpus, and report edge totals in the \
       summary table."
    in
    Arg.(value & flag & info [ "coverage" ] ~doc)
  in
  let coverage_json =
    let doc =
      "Write a JSON coverage summary (edges found, corpus size, execs) \
       here — the CI artifact.  Implies --coverage."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Mutate recorded traces (exit dup/reorder/truncation, fault and \
          register-field mutation, corruption planting, XEMEM and spawn \
          interleavings) and replay them under the sanitizer oracles, \
          sharded across domains, optionally coverage-guided")
    Term.(
      ret
        (const run_fuzz $ trials $ seed $ mutations $ domains $ seconds
       $ corpus $ known $ coverage $ coverage_json))

(* --- loadgen --- *)

let run_loadgen enclaves ops zipf seed shards domains max_in_flight bucket
    refill config json_out =
  let module L = Covirt_loadgen.Loadgen in
  match
    L.spec ~tenants:enclaves ~ops ~zipf_s:zipf ~seed ~shards ~config
      ~max_in_flight ~bucket_capacity:bucket ~refill_cycles:refill ()
  with
  | exception Invalid_argument m -> `Error (false, m)
  | spec -> (
      let r = L.run ?domains spec in
      print_string (L.transcript r);
      (match json_out with
      | Some file ->
          let oc = open_out file in
          output_string oc (L.to_json r);
          output_char oc '\n';
          close_out oc;
          (* stderr, so stdout stays byte-comparable across runs whose
             only difference is the output filename *)
          Printf.eprintf "json written to %s\n" file
      | None -> ());
      if L.ok r then `Ok ()
      else
        `Error
          ( false,
            "loadgen audit failed: leaked state, verifier violations or \
             admission bound exceeded" ))

let loadgen_cmd =
  let enclaves =
    let doc = "Tenant enclaves across all shards." in
    Arg.(value & opt int 64 & info [ "enclaves"; "n" ] ~docv:"N" ~doc)
  in
  let ops =
    let doc = "Control-plane operations across all shards." in
    Arg.(value & opt int 512 & info [ "ops" ] ~docv:"N" ~doc)
  in
  let zipf =
    let doc = "Zipf exponent of the tenant traffic skew (0 = uniform)." in
    Arg.(value & opt float 1.1 & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let seed =
    let doc = "Experiment seed (identity; same seed, same bytes)." in
    Arg.(value & opt int 9 & info [ "seed"; "s" ] ~docv:"SEED" ~doc)
  in
  let shards =
    let doc =
      "Shard count — one independent node per shard; part of the \
       experiment identity (unlike --domains)."
    in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let max_in_flight =
    let doc = "Admission bound on concurrent unsettled boots, per shard." in
    Arg.(value & opt int 8 & info [ "max-in-flight" ] ~docv:"N" ~doc)
  in
  let bucket =
    let doc = "Per-tenant token-bucket capacity." in
    Arg.(value & opt int 8 & info [ "bucket" ] ~docv:"N" ~doc)
  in
  let refill =
    let doc =
      "Cycles per token refill on the tenant's own clock (0 disables \
       rate limiting)."
    in
    Arg.(value & opt int 0 & info [ "refill" ] ~docv:"CYCLES" ~doc)
  in
  let json_out =
    let doc =
      "Write the machine-readable report (per-tenant p50/p95/p99 ns, \
       admission and leak audit) here — the CI artifact."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive Zipf-distributed create/boot/export/attach/grant/destroy \
          churn against a dense multi-tenant node under admission control, \
          then audit it: no leaks, verifier clean, in-flight bound held. \
          Nonzero exit when the audit fails.")
    Term.(
      ret
        (const run_loadgen $ enclaves $ ops $ zipf $ seed $ shards $ domains
       $ max_in_flight $ bucket $ refill $ config $ json_out))

(* --- top level --- *)

let () =
  let doc = "Covirt co-kernel fault-isolation simulator" in
  let info = Cmd.info "covirt-ctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiment_cmd; demo_cmd; faults_cmd; analyze_cmd; supervise_cmd;
            stats_cmd; record_cmd; replay_cmd; fuzz_cmd; loadgen_cmd;
          ]))
